//! Theorem 9: a dominating set of size `k` in `O(n^{1−1/k})` rounds.
//!
//! The algorithm is the paper's modification of the Dolev et al. scheme:
//!
//! 1. Partition `V` into `n^{1/k}` parts of size `O(n^{1−1/k})` and give
//!    each node a label in `[n^{1/k}]^k` (all labels used).
//! 2. Node `v` with label `(j_1, …, j_k)` learns **all edges incident to**
//!    `S_v = S_{j_1} ∪ … ∪ S_{j_k}` — that is `O(k·n^{2−1/k})` edge bits,
//!    which balanced routing delivers in `O(k·n^{1−1/k})` rounds (the paper
//!    invokes Lenzen's protocol here; see DESIGN.md).
//! 3. `v` locally checks whether some size-`k` subset of `S_v` dominates
//!    the whole graph; knowing all edges incident to `S_v` suffices for
//!    this. If a dominating set `D = {v_1, …, v_k}` exists with
//!    `v_i ∈ S_{j_i}`, the node labelled `(j_1, …, j_k)` finds it.
//!
//! The local search is the expensive part of the theorem ("unlimited local
//! computation"); here it runs over closed-neighbourhood bitmasks with
//! early exit.

use cc_graph::Graph;
use cc_routing::{all_to_all_broadcast, route_balanced, RouteError};
use cc_subgraph::Partition;
use cliquesim::{BitString, NodeId, Session};

/// Per-run result: a dominating set of size ≤ `k` known to all nodes, or
/// `None`.
pub type DsResult = Option<Vec<usize>>;

/// Closed-neighbourhood bitmask over `⌈n/64⌉` words.
fn closed_neighborhood(edges_of: &[Vec<usize>], u: usize, words: usize) -> Vec<u64> {
    let mut mask = vec![0u64; words];
    mask[u / 64] |= 1 << (u % 64);
    for &w in &edges_of[u] {
        mask[w / 64] |= 1 << (w % 64);
    }
    mask
}

/// Search for a size-`k` subset of `candidates` whose closed
/// neighbourhoods cover all `n` vertices. Local computation with early
/// exit; masks are ORed incrementally along the search tree.
fn search_dominating(
    masks: &[Vec<u64>],
    candidates: &[usize],
    k: usize,
    n: usize,
) -> Option<Vec<usize>> {
    let words = n.div_ceil(64);
    let full: Vec<u64> = (0..words)
        .map(|w| {
            let bits = if (w + 1) * 64 <= n { 64 } else { n - w * 64 };
            if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            }
        })
        .collect();
    fn covered(acc: &[u64], full: &[u64]) -> bool {
        acc.iter().zip(full).all(|(a, f)| a & f == *f)
    }
    fn rec(
        masks: &[Vec<u64>],
        candidates: &[usize],
        full: &[u64],
        start: usize,
        k: usize,
        acc: &mut Vec<u64>,
        picked: &mut Vec<usize>,
    ) -> bool {
        if covered(acc, full) {
            return true;
        }
        if k == 0 || start >= candidates.len() {
            return false;
        }
        // Prune: not enough picks left to matter is handled by the k == 0
        // check; a simple candidate loop with backtracking follows.
        for ci in start..candidates.len() {
            // Remaining candidates must suffice.
            if candidates.len() - ci < k && !covered(acc, full) {
                // keep looping; the k-1 recursion below handles budget
            }
            let u = candidates[ci];
            let before = acc.clone();
            for (a, m) in acc.iter_mut().zip(&masks[u]) {
                *a |= m;
            }
            picked.push(u);
            if rec(masks, candidates, full, ci + 1, k - 1, acc, picked) {
                return true;
            }
            picked.pop();
            *acc = before;
        }
        false
    }
    let mut acc = vec![0u64; words];
    let mut picked = Vec::new();
    rec(masks, candidates, &full, 0, k, &mut acc, &mut picked).then_some(picked)
}

/// Find a dominating set of size ≤ `k`, or decide none exists
/// (Theorem 9). All nodes learn the same answer.
pub fn dominating_set(session: &mut Session, g: &Graph, k: usize) -> Result<DsResult, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    assert!(k >= 1, "k must be at least 1");
    if n == 0 {
        return Ok(Some(vec![]));
    }
    let part = Partition::new(n, k);

    // Union membership per detector.
    let unions: Vec<Option<Vec<usize>>> = (0..n).map(|v| part.union_of(v)).collect();
    let member: Vec<Option<Vec<bool>>> = unions
        .iter()
        .map(|u| {
            u.as_ref().map(|verts| {
                let mut m = vec![false; n];
                for &x in verts {
                    m[x] = true;
                }
                m
            })
        })
        .collect();

    // ---- Phase 1: each detector learns all edges incident to its union ---
    // Sender `a` owns the private bit of edge {a, b} per the balanced split
    // (§3); it forwards that bit to detector v iff a or b lies in S_v. Both
    // sides compute the same slot list from global knowledge.
    let owned: Vec<Vec<usize>> = (0..n).map(|a| Graph::owned_slots(n, a)).collect();
    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for a in 0..n {
        for v in 0..n {
            let Some(m) = member[v].as_ref() else {
                continue;
            };
            if v == a {
                continue; // local hand-off is free
            }
            let mut bits = BitString::new();
            for &b in &owned[a] {
                if m[a] || m[b] {
                    bits.push(g.has_edge(a, b));
                }
            }
            if !bits.is_empty() {
                demands[a].push((NodeId::from(v), bits));
            }
        }
    }
    let delivered = route_balanced(session, demands)?;

    // ---- Phase 2: local search over size-k subsets of the union ----------
    let words = n.div_ceil(64);
    let mut local: Vec<Option<Vec<usize>>> = vec![None; n];
    for v in 0..n {
        let Some(m) = member[v].as_ref() else {
            continue;
        };
        let union = unions[v].as_ref().expect("detector has a union");
        // Reconstruct all edges incident to the union.
        let mut edges_of: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut add = |a: usize, b: usize, present: bool| {
            if present {
                edges_of[a].push(b);
                edges_of[b].push(a);
            }
        };
        for (src, bits) in &delivered[v] {
            let a = src.index();
            let mut idx = 0;
            for &b in &owned[a] {
                if m[a] || m[b] {
                    add(a, b, bits.get(idx));
                    idx += 1;
                }
            }
        }
        // Own bits (if v itself owns relevant edges, no wire transfer).
        for &b in &owned[v] {
            if m[v] || m[b] {
                add(v, b, g.has_edge(v, b));
            }
        }
        let masks: Vec<Vec<u64>> = (0..n)
            .map(|u| closed_neighborhood(&edges_of, u, words))
            .collect();
        local[v] = search_dominating(&masks, union, k, n);
    }

    // ---- Phase 3: agree on the lowest-id witness -------------------------
    let idw = BitString::width_for(n);
    let payloads: Vec<BitString> = local
        .iter()
        .map(|w| {
            let mut bits = BitString::new();
            match w {
                Some(ids) => {
                    bits.push(true);
                    bits.push_uint(ids.len() as u64, idw);
                    for &u in ids {
                        bits.push_uint(u as u64, idw);
                    }
                }
                None => bits.push(false),
            }
            bits
        })
        .collect();
    let views = all_to_all_broadcast(session, payloads)?;
    for bits in &views[0] {
        let mut r = bits.reader();
        if r.read_bit().unwrap_or(false) {
            let len = r.read_uint(idw).expect("well-formed") as usize;
            let mut ids = Vec::with_capacity(len);
            for _ in 0..len {
                ids.push(r.read_uint(idw).expect("well-formed") as usize);
            }
            return Ok(Some(ids));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    fn run(g: &Graph, k: usize) -> (DsResult, usize) {
        let mut s = Session::new(Engine::new(g.n()));
        let res = dominating_set(&mut s, g, k).unwrap();
        (res, s.stats().rounds)
    }

    #[test]
    fn search_dominating_basics() {
        // Star: centre dominates everything.
        let g = gen::star(6);
        let edges_of: Vec<Vec<usize>> = (0..6).map(|u| g.neighbors(u).collect()).collect();
        let masks: Vec<Vec<u64>> = (0..6)
            .map(|u| closed_neighborhood(&edges_of, u, 1))
            .collect();
        assert_eq!(
            search_dominating(&masks, &[0, 1, 2, 3, 4, 5], 1, 6),
            Some(vec![0])
        );
        assert_eq!(search_dominating(&masks, &[1, 2, 3], 1, 6), None);
    }

    #[test]
    fn finds_planted_dominating_sets() {
        for seed in 0..4 {
            let (g, _) = gen::planted_dominating_set(20, 2, 0.1, seed);
            let (res, _) = run(&g, 2);
            let ds = res.expect("planted 2-DS must be found");
            assert!(reference::is_dominating_set(&g, &ds), "seed {seed}");
            assert!(ds.len() <= 2);
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..6 {
            let n = 13;
            let g = gen::gnp(n, 0.25, seed);
            for k in 1..=3 {
                let expect = reference::find_dominating_set(&g, k).is_some();
                let (got, _) = run(&g, k);
                assert_eq!(got.is_some(), expect, "seed {seed} k={k}");
                if let Some(ds) = got {
                    assert!(reference::is_dominating_set(&g, &ds));
                }
            }
        }
    }

    #[test]
    fn empty_graph_needs_n_nodes() {
        let g = Graph::empty(6);
        assert!(run(&g, 1).0.is_none());
        // Complete graph: any single node dominates.
        let (res, _) = run(&Graph::complete(6), 1);
        assert!(res.is_some());
    }

    #[test]
    fn cluster_graph_needs_one_per_clique() {
        let g = gen::cliques(12, 3);
        assert!(run(&g, 2).0.is_none());
        let (res, _) = run(&g, 3);
        let ds = res.expect("3 cliques need 3 dominators");
        assert!(reference::is_dominating_set(&g, &ds));
    }

    mod prop {
        use super::super::*;
        use cc_graph::{gen, reference};
        use cliquesim::{Engine, Session};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn prop_matches_brute_force(seed in any::<u64>(), k in 1usize..=3) {
                let n = 10;
                let g = gen::gnp(n, 0.3, seed);
                let expect = reference::find_dominating_set(&g, k).is_some();
                let mut s = Session::new(Engine::new(n));
                let got = dominating_set(&mut s, &g, k).unwrap();
                prop_assert_eq!(got.is_some(), expect);
                if let Some(ds) = got {
                    prop_assert!(reference::is_dominating_set(&g, &ds));
                    prop_assert!(ds.len() <= k);
                }
            }
        }
    }

    #[test]
    fn rounds_grow_sublinearly_for_k2() {
        // Exponent check lives in the bench harness; here a smoke test that
        // k = 2 at n = 64 costs well below the naive Θ(n) of shipping whole
        // rows everywhere.
        let (g, _) = gen::planted_dominating_set(64, 2, 0.05, 7);
        let (res, rounds) = run(&g, 2);
        assert!(res.is_some());
        assert!(rounds < 64 * 4, "rounds = {rounds}");
    }
}
