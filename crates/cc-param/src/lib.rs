//! # cc-param — parameterised algorithms on the congested clique
//!
//! The paper's two new upper bounds (§7.1, §7.3):
//!
//! * [`vertex_cover()`](fn@vertex_cover) — Theorem 11: a vertex cover of
//!   size `k` in `O(k)` rounds via distributed Buss kernelisation; the
//!   round count is independent of `n`.
//! * [`dominating_set()`](fn@dominating_set) — Theorem 9: a dominating
//!   set of size `k` in `O(n^{1−1/k})` rounds via the Dolev et al.
//!   partition plus balanced routing.
//!
//! Together with `cc-subgraph`'s `O(n^{1−2/k})` independent-set detector,
//! these populate the fixed-parameter corner of Figure 1: VC is genuinely
//! FPT-like (`O(k)` rounds), while k-IS and k-DS pay polynomial `n`-factors
//! whose exponents depend on `k` — mirroring the centralised
//! FPT vs W\[1\]/W\[2\] divide the paper discusses.

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod dominating_set;
pub mod vertex_cover;

pub use dominating_set::{dominating_set, DsResult};
pub use vertex_cover::{vertex_cover, vertex_cover_rounds, CoverResult};
