//! Theorem 11: a vertex cover of size `k` in `O(k)` rounds.
//!
//! The algorithm is the distributed Buss kernelisation of §7.3:
//!
//! 1. *Preprocessing (1 round).* Every node of degree ≥ k+1 joins the
//!    cover `C` and broadcasts one bit (Lemma 12: such nodes belong to
//!    every size-≤k cover). If more than `k` nodes joined, reject.
//! 2. *Main phase (≤ k rounds).* Every node `v ∉ C` broadcasts its
//!    incident edges not covered by `C` — at most `k` of them, since
//!    `deg(v) ≤ k` — one `⌈log₂ n⌉`-bit neighbour id per round.
//! 3. *Local phase.* Everyone now knows `G[V∖C]` entirely and computes a
//!    minimum vertex cover of it locally; a size-`k` cover of `G` exists
//!    iff a size-`(k−|C|)` cover of `G[V∖C]` does.
//!
//! The round count is `≤ k + 1`, *independent of n* — the fixed-parameter
//! tractability phenomenon the paper contrasts against `k`-IS and `k`-DS.

use cc_graph::{reference, Graph};
use cliquesim::{
    BitString, Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats, Session, SimError,
    Status,
};

/// Per-node result: the cover found (same at every node) or `None`.
pub type CoverResult = Option<Vec<usize>>;

struct VcNode {
    k: usize,
    row: BitString,
    /// Neighbours (derived from the row in `init`).
    neighbors: Vec<usize>,
    /// Nodes that joined C in preprocessing.
    in_c: Vec<bool>,
    joined: bool,
    c_size: usize,
    /// Uncovered incident edges still to announce (neighbour ids).
    to_announce: Vec<usize>,
    /// Collected kernel edges (u, v).
    kernel_edges: Vec<(usize, usize)>,
}

impl VcNode {
    fn new(k: usize, row: BitString) -> Self {
        Self {
            k,
            row,
            neighbors: Vec::new(),
            in_c: Vec::new(),
            joined: false,
            c_size: 0,
            to_announce: Vec::new(),
            kernel_edges: Vec::new(),
        }
    }

    fn finish(&self, n: usize) -> CoverResult {
        if self.c_size > self.k {
            return None;
        }
        // Solve the kernel locally (everyone has the same view of it).
        let mut kernel = Graph::empty(n);
        for &(u, v) in &self.kernel_edges {
            if !kernel.has_edge(u, v) {
                kernel.add_edge(u, v);
            }
        }
        let budget = self.k - self.c_size;
        let extra = reference::find_vertex_cover(&kernel, budget)?;
        let mut cover: Vec<usize> = (0..n).filter(|&u| self.in_c[u]).chain(extra).collect();
        cover.sort_unstable();
        cover.dedup();
        Some(cover)
    }
}

impl NodeProgram for VcNode {
    type Output = CoverResult;

    fn init(&mut self, ctx: &NodeCtx) {
        let me = ctx.id.index();
        self.in_c = vec![false; ctx.n];
        self.neighbors = (0..ctx.n)
            .filter(|&u| u != me)
            .filter(|&u| {
                let slot = if u < me { u } else { u - 1 };
                self.row.get(slot)
            })
            .collect();
    }

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<CoverResult> {
        let me = ctx.id.index();
        let idw = ctx.id_width();
        match round {
            0 => {
                // Preprocessing: high-degree nodes announce they join C.
                if self.neighbors.len() > self.k {
                    self.joined = true;
                    let mut one = BitString::new();
                    one.push(true);
                    outbox.broadcast(&one);
                }
                Status::Continue
            }
            1 => {
                // Learn C; queue uncovered incident edges for announcement.
                for (u, msg) in inbox.iter() {
                    if msg.get(0) {
                        self.in_c[u.index()] = true;
                    }
                }
                if self.joined {
                    self.in_c[me] = true;
                }
                self.c_size = self.in_c.iter().filter(|b| **b).count();
                if self.c_size > self.k {
                    // Too many forced nodes: no size-k cover exists, and
                    // everyone sees the same count, so all reject together.
                    return Status::Halt(None);
                }
                if !self.joined {
                    self.to_announce = self
                        .neighbors
                        .iter()
                        .copied()
                        .filter(|&u| !self.in_c[u])
                        .collect();
                    debug_assert!(self.to_announce.len() <= self.k);
                }
                self.announce_next(me, idw, outbox);
                Status::Continue
            }
            r => {
                // Collect announcements from round r−1; send the next one.
                for (u, msg) in inbox.iter() {
                    let w = msg.reader().read_uint(idw).expect("well-formed edge id") as usize;
                    let (a, b) = (u.index().min(w), u.index().max(w));
                    self.kernel_edges.push((a, b));
                }
                // k announcement slots live in rounds 1..=k; the run ends
                // after the last slot's messages are delivered.
                if r > self.k {
                    return Status::Halt(self.finish(ctx.n));
                }
                self.announce_next(me, idw, outbox);
                Status::Continue
            }
        }
    }
}

impl VcNode {
    fn announce_next(&mut self, _me: usize, idw: usize, outbox: &mut Outbox<'_>) {
        if let Some(u) = self.to_announce.pop() {
            let mut msg = BitString::new();
            msg.push_uint(u as u64, idw);
            outbox.broadcast(&msg);
        }
    }
}

/// Find a vertex cover of size ≤ `k`, or decide none exists, in `O(k)`
/// rounds (Theorem 11). All nodes return the same answer.
///
/// ```
/// use cc_param::vertex_cover;
/// use cliquesim::{Engine, Session};
///
/// let g = cc_graph::gen::star(50); // centre + 49 leaves
/// let mut session = Session::new(Engine::new(50));
/// let cover = vertex_cover(&mut session, &g, 1).unwrap();
/// assert_eq!(cover, Some(vec![0]));
/// assert!(session.stats().rounds <= 3, "O(k) rounds, independent of n");
/// ```
pub fn vertex_cover(session: &mut Session, g: &Graph, k: usize) -> Result<CoverResult, SimError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    let programs: Vec<VcNode> = (0..n)
        .map(|v| VcNode::new(k, g.input_row(NodeId::from(v))))
        .collect();
    let out = session.run(programs)?;
    let answer = out
        .unanimous()
        .expect("vertex cover verdict must be unanimous")
        .clone();
    Ok(answer)
}

/// Convenience wrapper measuring the round cost on a fresh engine.
pub fn vertex_cover_rounds(g: &Graph, k: usize) -> Result<(CoverResult, RunStats), SimError> {
    let mut session = Session::new(Engine::new(g.n()));
    let res = vertex_cover(&mut session, g, k)?;
    Ok((res, session.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use proptest::prelude::*;

    #[test]
    fn finds_covers_matching_brute_force() {
        for seed in 0..6 {
            let n = 14;
            let g = gen::gnp(n, 0.25, seed);
            let tau = reference::min_vertex_cover_size(&g);
            for k in [tau.saturating_sub(1), tau, tau + 1] {
                let mut s = Session::new(Engine::new(n));
                let got = vertex_cover(&mut s, &g, k).unwrap();
                if k < tau {
                    assert!(got.is_none(), "seed {seed} k={k} tau={tau}");
                } else {
                    let cover = got.expect("cover exists");
                    assert!(reference::is_vertex_cover(&g, &cover), "seed {seed}");
                    assert!(cover.len() <= k, "seed {seed}: {} > {k}", cover.len());
                }
            }
        }
    }

    #[test]
    fn rounds_bounded_by_k_plus_one() {
        for k in [0usize, 1, 2, 4, 7] {
            for n in [16usize, 48, 96] {
                let g = gen::gnp(n, 2.0 / n as f64, (n + k) as u64);
                let (_, stats) = vertex_cover_rounds(&g, k).unwrap();
                assert!(
                    stats.rounds <= k + 2,
                    "n={n} k={k}: rounds {} exceeds k+2",
                    stats.rounds
                );
            }
        }
    }

    #[test]
    fn rounds_do_not_grow_with_n() {
        // Theorem 11's headline: round complexity depends on k only.
        let k = 4;
        let rounds: Vec<usize> = [32usize, 64, 128, 256]
            .iter()
            .map(|&n| {
                // Sparse graph so that a k-cover exists and degrees stay low.
                let g = gen::star(n); // one high-degree node: C = {0}
                let (res, stats) = vertex_cover_rounds(&g, k).unwrap();
                assert_eq!(res, Some(vec![0]));
                stats.rounds
            })
            .collect();
        assert!(
            rounds.windows(2).all(|w| w[0] == w[1]),
            "rounds varied with n: {rounds:?}"
        );
    }

    #[test]
    fn early_reject_when_too_many_forced() {
        // A graph where > k nodes have degree ≥ k+1: complete graph.
        let g = Graph::complete(10);
        let (res, stats) = vertex_cover_rounds(&g, 3).unwrap();
        assert!(res.is_none());
        assert!(
            stats.rounds <= 2,
            "early reject should be fast, took {}",
            stats.rounds
        );
    }

    #[test]
    fn k_zero_on_empty_and_nonempty() {
        let empty = Graph::empty(8);
        let (res, _) = vertex_cover_rounds(&empty, 0).unwrap();
        assert_eq!(res, Some(vec![]));
        let (res, _) = vertex_cover_rounds(&gen::path(8), 0).unwrap();
        assert!(res.is_none());
    }

    #[test]
    fn star_needs_exactly_one() {
        let g = gen::star(30);
        let (res, _) = vertex_cover_rounds(&g, 1).unwrap();
        assert_eq!(res, Some(vec![0]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_agrees_with_reference(seed in any::<u64>(), k in 0usize..6) {
            let n = 12;
            let g = gen::gnp(n, 0.3, seed);
            let expect = reference::find_vertex_cover(&g, k).is_some();
            let (got, _) = vertex_cover_rounds(&g, k).unwrap();
            prop_assert_eq!(got.is_some(), expect);
            if let Some(cover) = got {
                prop_assert!(reference::is_vertex_cover(&g, &cover));
                prop_assert!(cover.len() <= k);
            }
        }
    }
}
