//! Testkit conformance for the Section 7 reductions: Theorem 10's
//! k-IS → k-DS pipeline and the Dor–Halperin–Zwick Boolean-MM →
//! approximate-APSP arrow, judged by independent oracles. The reductions
//! build their own (virtual) sessions internally, so soundness is judged
//! on the final answers while the cost model is checked on the reported
//! stats.

use cc_reductions::{boolean_mm_via_approx_apsp, independent_set_via_dominating_set};
use cc_testkit::{differential_session, oracle, Family, Instance};

#[test]
fn thm10_pipeline_is_sound_and_complete_across_families() {
    let k = 2;
    for family in [
        Family::ErMedium,
        Family::ErDense,
        Family::Complete, // no independent pair at all
        Family::Empty,    // every pair is independent
        Family::PlantedIndependentSet,
    ] {
        for seed in [1u64, 2] {
            let inst = Instance::new(family, 8, seed);
            let g = inst.graph();
            let out = independent_set_via_dominating_set(&g, k).unwrap();
            oracle::judge_independent_set_witness(&inst.label(), &g, k, &out.independent_set);

            // Theorem 10 cost model: host rounds = virtual rounds × factor,
            // and the per-host virtual load is O(k²) — independent of n.
            assert_eq!(
                out.host_stats.rounds,
                out.virtual_stats.rounds * out.factor,
                "{inst}: simulation factor not applied uniformly"
            );
            assert!(
                out.max_load <= k + k * (k - 1) / 2 + k,
                "{inst}: virtual load {} exceeds the O(k²) bound",
                out.max_load
            );
        }
    }
}

#[test]
fn dhz_boolean_mm_matches_the_oracle_product() {
    for (n, seed) in [(5usize, 1u64), (6, 2)] {
        let inst = Instance::new(Family::ErMedium, n, seed);
        let g = inst.graph();
        let a: Vec<Vec<bool>> = (0..n)
            .map(|i| (0..n).map(|j| g.has_edge(i, j)).collect())
            .collect();
        let (got, stats) = boolean_mm_via_approx_apsp(&a, &a, 0.5).unwrap();
        oracle::judge_matmul(
            &inst.label(),
            &a,
            &a,
            &got,
            false,
            |x, y| *x || *y,
            |x, y| *x && *y,
        );
        assert!(stats.rounds > 0, "{inst}: reduction must simulate rounds");
    }
}

#[test]
fn gadget_construction_is_deterministic_across_pool_shapes() {
    // The host-side part of Theorem 10 that *does* run in a session —
    // re-derived here through the public pipeline on identical inputs —
    // must not depend on scheduling. The pipeline itself is deterministic
    // in (g, k); run it repeatedly and through a session-based detection
    // differential to pin that down.
    let inst = Instance::new(Family::ErMedium, 8, 7);
    let g = inst.graph();
    let first = independent_set_via_dominating_set(&g, 2).unwrap();
    for _ in 0..2 {
        let again = independent_set_via_dominating_set(&g, 2).unwrap();
        assert_eq!(
            first.independent_set, again.independent_set,
            "{inst}: reduction output is not deterministic"
        );
        assert_eq!(first.virtual_stats, again.virtual_stats, "{inst}");
    }
    // Cross-check against a directly session-run detector on pool shapes.
    let direct = differential_session(&inst.label(), g.n(), |s| {
        cc_subgraph::detect_independent_set(s, &g, 2).unwrap()
    });
    assert_eq!(
        first.independent_set.is_some(),
        direct.is_some(),
        "{inst}: reduction and direct detection disagree on membership"
    );
}
