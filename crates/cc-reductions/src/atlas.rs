//! Figure 1 as data: the fine-grained map of the congested clique.
//!
//! Every problem in the paper's Figure 1 is a [`ProblemId`]; every arrow
//! ("arrow to L1 from L2 indicates δ(L1) ≤ δ(L2)") is an [`Arrow`] with
//! its provenance. The atlas is self-checking: recorded exponent upper
//! bounds must equal the closure of the arrow relation
//! ([`Atlas::validate`]), and it renders to Graphviz for visual comparison
//! with the paper's figure ([`Atlas::to_dot`]).

/// `ω < 2.3728639`, the matrix multiplication exponent (Le Gall \[41\]).
pub const OMEGA: f64 = 2.372_863_9;

/// An exponent upper bound, kept symbolic so the `k`-parameterised entries
/// evaluate correctly for every `k`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Bound {
    /// `δ = 0` (round complexity independent of n).
    Zero,
    /// The trivial gather bound `δ ≤ 1`.
    One,
    /// `δ ≤ 1/3` (semiring MM, \[10\]).
    Third,
    /// `δ ≤ 1 − 2/ω` (ring MM, \[10, 41\]).
    OneMinusTwoOverOmega,
    /// `δ ≤ 0.2096` (unweighted directed APSP, Le Gall \[42\]).
    LeGallApsp,
    /// `δ ≤ 1 − 2/k` (Dolev et al. \[16\]).
    OneMinusTwoOverK,
    /// `δ ≤ 1 − 1/k` (Theorem 9).
    OneMinusOneOverK,
}

impl Bound {
    /// Numeric value for a given `k` (ignored by non-parameterised bounds).
    pub fn value(self, k: usize) -> f64 {
        match self {
            Bound::Zero => 0.0,
            Bound::One => 1.0,
            Bound::Third => 1.0 / 3.0,
            Bound::OneMinusTwoOverOmega => 1.0 - 2.0 / OMEGA,
            Bound::LeGallApsp => 0.2096,
            Bound::OneMinusTwoOverK => 1.0 - 2.0 / k as f64,
            Bound::OneMinusOneOverK => 1.0 - 1.0 / k as f64,
        }
    }

    /// Human-readable formula.
    pub fn formula(self) -> &'static str {
        match self {
            Bound::Zero => "0",
            Bound::One => "1",
            Bound::Third => "1/3",
            Bound::OneMinusTwoOverOmega => "1-2/ω",
            Bound::LeGallApsp => "0.2096",
            Bound::OneMinusTwoOverK => "1-2/k",
            Bound::OneMinusOneOverK => "1-1/k",
        }
    }
}

/// The problems of Figure 1 (plus k-VC from §7.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variant names mirror the figure's labels
pub enum ProblemId {
    ApspWeightedDirected,
    ApspWeightedUndirected,
    ApspWeightedUndirected2MinusEps,
    ApspWeightedUndirected1PlusEps,
    ApspUnweightedDirected,
    ApspUnweightedUndirected,
    SsspWeightedDirected,
    SsspWeightedUndirected,
    SsspWeightedUndirected1PlusEps,
    SsspUnweightedDirected,
    SsspUnweightedUndirected,
    BfsTree,
    TransitiveClosure,
    BooleanMM,
    MinPlusMM,
    RingMM,
    SemiringMM,
    Triangle3IS,
    Size3Subgraph,
    KCycle,
    SizeKSubgraph,
    KIndependentSet,
    KDominatingSet,
    KVertexCover,
    MaxIndependentSet,
    MinVertexCover,
    KColoring,
}

impl ProblemId {
    /// All problems, in a stable order.
    pub fn all() -> Vec<ProblemId> {
        use ProblemId::*;
        vec![
            ApspWeightedDirected,
            ApspWeightedUndirected,
            ApspWeightedUndirected2MinusEps,
            ApspWeightedUndirected1PlusEps,
            ApspUnweightedDirected,
            ApspUnweightedUndirected,
            SsspWeightedDirected,
            SsspWeightedUndirected,
            SsspWeightedUndirected1PlusEps,
            SsspUnweightedDirected,
            SsspUnweightedUndirected,
            BfsTree,
            TransitiveClosure,
            BooleanMM,
            MinPlusMM,
            RingMM,
            SemiringMM,
            Triangle3IS,
            Size3Subgraph,
            KCycle,
            SizeKSubgraph,
            KIndependentSet,
            KDominatingSet,
            KVertexCover,
            MaxIndependentSet,
            MinVertexCover,
            KColoring,
        ]
    }

    /// The label used in Figure 1.
    pub fn label(self) -> &'static str {
        use ProblemId::*;
        match self {
            ApspWeightedDirected => "APSP w/d",
            ApspWeightedUndirected => "APSP w/ud",
            ApspWeightedUndirected2MinusEps => "APSP w/ud/(2-eps)",
            ApspWeightedUndirected1PlusEps => "APSP w/ud/(1+eps)",
            ApspUnweightedDirected => "APSP uw/d",
            ApspUnweightedUndirected => "APSP uw/ud",
            SsspWeightedDirected => "SSSP w/d",
            SsspWeightedUndirected => "SSSP w/ud",
            SsspWeightedUndirected1PlusEps => "SSSP w/ud/(1+eps)",
            SsspUnweightedDirected => "SSSP uw/d",
            SsspUnweightedUndirected => "SSSP uw/ud",
            BfsTree => "BFS tree",
            TransitiveClosure => "Transitive closure",
            BooleanMM => "Boolean MM",
            MinPlusMM => "(min,+) MM",
            RingMM => "Ring MM",
            SemiringMM => "Semiring MM",
            Triangle3IS => "Triangle/3-IS",
            Size3Subgraph => "size 3 subgraph",
            KCycle => "k-cycle",
            SizeKSubgraph => "size k subgraph",
            KIndependentSet => "k-IS",
            KDominatingSet => "k-DS",
            KVertexCover => "k-VC",
            MaxIndependentSet => "MaxIS",
            MinVertexCover => "MinVC",
            KColoring => "k-COL",
        }
    }

    /// The best exponent upper bound recorded in the paper.
    pub fn upper_bound(self) -> Bound {
        use ProblemId::*;
        match self {
            KVertexCover | SsspWeightedUndirected1PlusEps => Bound::Zero,
            MaxIndependentSet | MinVertexCover | KColoring => Bound::One,
            ApspWeightedDirected
            | ApspWeightedUndirected
            | SsspWeightedDirected
            | SsspWeightedUndirected
            | MinPlusMM
            | SemiringMM => Bound::Third,
            RingMM
            | BooleanMM
            | TransitiveClosure
            | Triangle3IS
            | Size3Subgraph
            | KCycle
            | ApspWeightedUndirected1PlusEps
            | ApspWeightedUndirected2MinusEps => Bound::OneMinusTwoOverOmega,
            ApspUnweightedDirected
            | ApspUnweightedUndirected
            | SsspUnweightedDirected
            | SsspUnweightedUndirected
            | BfsTree => Bound::LeGallApsp,
            SizeKSubgraph | KIndependentSet => Bound::OneMinusTwoOverK,
            KDominatingSet => Bound::OneMinusOneOverK,
        }
    }

    /// Where the recorded upper bound comes from.
    pub fn upper_provenance(self) -> &'static str {
        use ProblemId::*;
        match self {
            KVertexCover => "Theorem 11 (this paper)",
            KDominatingSet => "Theorem 9 (this paper)",
            SsspWeightedUndirected1PlusEps => "Becker et al. [5]",
            MaxIndependentSet | MinVertexCover | KColoring => "trivial gather",
            SemiringMM | MinPlusMM => "Censor-Hillel et al. [10]",
            RingMM => "Censor-Hillel et al. [10] + Le Gall [41]",
            ApspUnweightedDirected => "Le Gall [42]",
            SizeKSubgraph | KIndependentSet => "Dolev et al. [16]",
            _ => "via Figure 1 arrows",
        }
    }
}

/// One arrow of Figure 1: δ(`to`) ≤ δ(`from`).
#[derive(Clone, Copy, Debug)]
pub struct Arrow {
    /// The easier problem.
    pub to: ProblemId,
    /// The problem it reduces to.
    pub from: ProblemId,
    /// Why (reduction or specialisation, with reference).
    pub provenance: &'static str,
}

/// The full map.
#[derive(Clone, Debug, Default)]
pub struct Atlas;

impl Atlas {
    /// All arrows of Figure 1, as justified in §7 of the paper.
    pub fn arrows() -> Vec<Arrow> {
        use ProblemId::*;
        let a = |to, from, provenance| Arrow {
            to,
            from,
            provenance,
        };
        vec![
            // Matrix multiplication backbone.
            a(
                BooleanMM,
                RingMM,
                "Boolean product embeds in the integer ring",
            ),
            a(BooleanMM, SemiringMM, "Boolean semiring is a semiring"),
            a(MinPlusMM, SemiringMM, "(min,+) is a semiring"),
            a(TransitiveClosure, BooleanMM, "O(log n) Boolean squarings"),
            // Subgraph detection [10, 16].
            a(Triangle3IS, BooleanMM, "Censor-Hillel et al. [10]"),
            a(Triangle3IS, Size3Subgraph, "triangle is a 3-vertex pattern"),
            a(Size3Subgraph, BooleanMM, "Censor-Hillel et al. [10]"),
            a(
                KCycle,
                BooleanMM,
                "Censor-Hillel et al. [10], exp(k)·n^{0.157}",
            ),
            a(KCycle, SizeKSubgraph, "a k-cycle is a k-vertex pattern"),
            // Parameterised problems (§7.1–7.3).
            a(KIndependentSet, KDominatingSet, "Theorem 10 (this paper)"),
            a(
                KIndependentSet,
                MaxIndependentSet,
                "trivial: MaxIS answers k-IS",
            ),
            // APSP family.
            a(
                ApspWeightedDirected,
                MinPlusMM,
                "O(log n) distance-product squarings",
            ),
            a(
                ApspWeightedUndirected,
                ApspWeightedDirected,
                "undirected is a special case",
            ),
            a(
                ApspUnweightedUndirected,
                ApspWeightedUndirected,
                "unit weights",
            ),
            a(
                ApspUnweightedUndirected,
                ApspUnweightedDirected,
                "undirected is a special case",
            ),
            a(ApspUnweightedDirected, ApspWeightedDirected, "unit weights"),
            a(
                ApspWeightedUndirected1PlusEps,
                RingMM,
                "Censor-Hillel et al. [10]",
            ),
            a(
                ApspWeightedUndirected2MinusEps,
                ApspWeightedUndirected1PlusEps,
                "a (1+eps) approximation is a (2-eps') approximation",
            ),
            a(
                ApspWeightedUndirected2MinusEps,
                ApspWeightedUndirected,
                "exact answers approximate",
            ),
            a(
                BooleanMM,
                ApspWeightedUndirected2MinusEps,
                "Dor, Halperin & Zwick [17]",
            ),
            // SSSP family (all trivial specialisations).
            a(
                SsspWeightedDirected,
                ApspWeightedDirected,
                "single source of APSP",
            ),
            a(
                SsspWeightedUndirected,
                ApspWeightedUndirected,
                "single source of APSP",
            ),
            a(
                SsspUnweightedDirected,
                ApspUnweightedDirected,
                "single source of APSP",
            ),
            a(
                SsspUnweightedUndirected,
                ApspUnweightedUndirected,
                "single source of APSP",
            ),
            a(
                SsspUnweightedUndirected,
                SsspWeightedUndirected,
                "unit weights",
            ),
            a(
                SsspWeightedUndirected,
                SsspWeightedDirected,
                "undirected is a special case",
            ),
            a(
                SsspWeightedUndirected1PlusEps,
                SsspWeightedUndirected,
                "exact answers approximate",
            ),
            a(
                BfsTree,
                SsspUnweightedUndirected,
                "BFS tree from unweighted SSSP",
            ),
            // Local problems.
            a(
                KColoring,
                MaxIndependentSet,
                "clique blow-up reduction [46]",
            ),
            a(
                MaxIndependentSet,
                MinVertexCover,
                "complement: α(G) = n − τ(G)",
            ),
            a(
                MinVertexCover,
                MaxIndependentSet,
                "complement: τ(G) = n − α(G)",
            ),
        ]
    }

    /// Check that the recorded upper bounds are the closure of the arrow
    /// relation: for every problem, its bound equals the minimum over its
    /// own bound and the (transitively) reachable problems' bounds.
    pub fn validate(k: usize) -> Result<(), String> {
        let problems = ProblemId::all();
        let arrows = Self::arrows();
        for &p in &problems {
            // Bellman-Ford style closure over the reachability.
            let mut best = p.upper_bound().value(k);
            let mut frontier = vec![p];
            let mut seen = std::collections::HashSet::from([p]);
            while let Some(q) = frontier.pop() {
                for arr in arrows.iter().filter(|a| a.to == q) {
                    if seen.insert(arr.from) {
                        best = best.min(arr.from.upper_bound().value(k));
                        frontier.push(arr.from);
                    } else {
                        best = best.min(arr.from.upper_bound().value(k));
                    }
                }
            }
            let recorded = p.upper_bound().value(k);
            if recorded > best + 1e-9 {
                return Err(format!(
                    "{}: recorded bound {} exceeds arrow-implied bound {:.4} (k={k})",
                    p.label(),
                    recorded,
                    best
                ));
            }
        }
        Ok(())
    }

    /// Render the map as Graphviz DOT (arrow to L1 from L2 = edge L2 → L1,
    /// matching the figure's visual direction).
    pub fn to_dot() -> String {
        let mut out = String::from("digraph figure1 {\n  rankdir=LR;\n  node [shape=box];\n");
        for p in ProblemId::all() {
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\nδ ≤ {}\"];\n",
                p.label(),
                p.label(),
                p.upper_bound().formula()
            ));
        }
        for a in Self::arrows() {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [tooltip=\"{}\"];\n",
                a.from.label(),
                a.to.label(),
                a.provenance
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_evaluate() {
        assert_eq!(Bound::Zero.value(3), 0.0);
        assert_eq!(Bound::One.value(3), 1.0);
        assert!((Bound::OneMinusTwoOverOmega.value(3) - 0.157_1).abs() < 1e-3);
        assert!((Bound::OneMinusTwoOverK.value(4) - 0.5).abs() < 1e-12);
        assert!((Bound::OneMinusOneOverK.value(4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn atlas_is_closed_under_arrows() {
        for k in [3usize, 4, 5, 8] {
            Atlas::validate(k).unwrap();
        }
    }

    #[test]
    fn paper_highlights_hold() {
        use ProblemId::*;
        let k = 3;
        // Theorem 10's punchline: δ(k-IS) ≤ δ(k-DS), and the recorded
        // bounds respect it with room to spare (1−2/k < 1−1/k).
        assert!(KIndependentSet.upper_bound().value(k) < KDominatingSet.upper_bound().value(k));
        // Theorem 11: k-VC is constant-round.
        assert_eq!(KVertexCover.upper_bound().value(k), 0.0);
        // The MM backbone ordering.
        assert!(RingMM.upper_bound().value(k) < SemiringMM.upper_bound().value(k));
    }

    #[test]
    fn arrows_reference_known_problems_and_dot_renders() {
        let all: std::collections::HashSet<_> = ProblemId::all().into_iter().collect();
        for a in Atlas::arrows() {
            assert!(all.contains(&a.to) && all.contains(&a.from));
        }
        let dot = Atlas::to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("Boolean MM"));
        assert!(dot.contains("Theorem 10"));
        // Every problem appears as a node.
        for p in ProblemId::all() {
            assert!(dot.contains(p.label()), "{} missing from DOT", p.label());
        }
    }

    #[test]
    fn every_problem_has_provenance() {
        for p in ProblemId::all() {
            assert!(!p.upper_provenance().is_empty());
            assert!(!p.label().is_empty());
        }
    }
}
