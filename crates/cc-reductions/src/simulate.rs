//! Simulating a larger clique on the clique at hand.
//!
//! Theorem 10's final step: "given an input graph G and a dominating set
//! algorithm A with running time O(n^δ), we can simulate in the congested
//! clique the execution of A on G′ in O(k^{2δ+4} n^δ) rounds" — each node
//! of the real clique impersonates the `O(k²)` gadget vertices it can
//! construct from its local view.
//!
//! Two layers:
//!
//! * [`run_virtual`] — a *packet-level* simulator: executes any
//!   [`NodeProgram`] written for an `n′`-node clique on an `n`-node host
//!   session, shipping every virtual message inside host messages. This is
//!   the constructive version of the theorem's argument.
//! * [`SimulationCost`] — the *accounting* version: converts the round
//!   count of an algorithm measured on an `n′`-node engine into the host
//!   cost the simulation argument guarantees (`⌈c²·B′/B⌉` host rounds per
//!   virtual round for per-host load `c`), which is how the theorem itself
//!   reasons. Phase-composed algorithms (like Theorem 9's, which uses the
//!   routing substrate) are costed this way.

use cc_routing::{route, RouteError};
use cliquesim::{
    BitString, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats, Session, Status,
};

/// Assignment of virtual nodes to host nodes.
#[derive(Clone, Debug)]
pub struct Assignment {
    /// `host_of[v′]` = host node index for virtual node `v′`.
    pub host_of: Vec<usize>,
    /// Number of host nodes.
    pub hosts: usize,
}

impl Assignment {
    /// Round-robin assignment of `n_virtual` nodes to `hosts` hosts.
    pub fn round_robin(n_virtual: usize, hosts: usize) -> Self {
        assert!(hosts >= 1);
        Self {
            host_of: (0..n_virtual).map(|v| v % hosts).collect(),
            hosts,
        }
    }

    /// Largest number of virtual nodes any host simulates.
    pub fn max_load(&self) -> usize {
        let mut load = vec![0usize; self.hosts];
        for &h in &self.host_of {
            load[h] += 1;
        }
        load.into_iter().max().unwrap_or(0)
    }
}

/// Accounting-level simulation cost (the theorem's own argument).
#[derive(Clone, Copy, Debug)]
pub struct SimulationCost {
    /// Host rounds charged per virtual round.
    pub factor: usize,
}

impl SimulationCost {
    /// One virtual round moves, per ordered host pair, at most `c²` virtual
    /// messages of `B′` bits; the host link carries `B` bits per round.
    pub fn per_round(c: usize, virtual_bandwidth: usize, host_bandwidth: usize) -> Self {
        let bits = c * c * virtual_bandwidth;
        Self {
            factor: bits.div_ceil(host_bandwidth).max(1),
        }
    }

    /// Host cost of a virtual run. Rounds scale by the factor; payload
    /// totals and the auxiliary counters carry over unchanged.
    pub fn apply(&self, virtual_stats: &RunStats) -> RunStats {
        RunStats {
            rounds: virtual_stats.rounds * self.factor,
            ..virtual_stats.clone()
        }
    }
}

/// Packet-level execution of an `n′`-node clique algorithm on an `n`-node
/// host session.
///
/// Every virtual message `v′ → u′` travels as a framed
/// `(src′, dst′, payload)` record from `host(v′)` to `host(u′)`; messages
/// between co-hosted virtual nodes are free local hand-offs. Virtual
/// bandwidth (`⌈log₂ n′⌉` by default) is enforced here, since the host
/// engine only checks host-message sizes.
pub fn run_virtual<P: NodeProgram>(
    host: &mut Session,
    assignment: &Assignment,
    mut programs: Vec<P>,
) -> Result<Vec<P::Output>, RouteError> {
    let nv = programs.len();
    assert_eq!(assignment.host_of.len(), nv);
    assert_eq!(assignment.hosts, host.n());
    let vb = BitString::width_for(nv); // virtual bandwidth
    let idw = BitString::width_for(nv);

    let ctxs: Vec<NodeCtx> = (0..nv)
        .map(|v| NodeCtx {
            id: NodeId::from(v),
            n: nv,
            bandwidth: vb,
        })
        .collect();
    for (p, ctx) in programs.iter_mut().zip(&ctxs) {
        p.init(ctx);
    }

    let mut inboxes: Vec<Vec<BitString>> = vec![vec![BitString::new(); nv]; nv];
    let mut halted = vec![false; nv];
    let mut outputs: Vec<Option<P::Output>> = (0..nv).map(|_| None).collect();
    let mut round = 0usize;
    loop {
        // Step all virtual nodes; collect their outboxes.
        let mut out_slots: Vec<Vec<BitString>> = vec![vec![BitString::new(); nv]; nv];
        for v in 0..nv {
            if halted[v] {
                continue;
            }
            let inbox = Inbox::from_slots(&inboxes[v], v);
            let mut outbox = Outbox::new(&mut out_slots[v], v);
            match programs[v].step(&ctxs[v], round, &inbox, &mut outbox) {
                Status::Continue => {}
                Status::Halt(out) => {
                    halted[v] = true;
                    outputs[v] = Some(out);
                }
            }
        }
        if halted.iter().all(|h| *h) {
            break;
        }

        // Clear virtual inboxes, then deliver.
        for row in &mut inboxes {
            for slot in row.iter_mut() {
                *slot = BitString::new();
            }
        }
        let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); assignment.hosts];
        for v in 0..nv {
            let hv = assignment.host_of[v];
            for u in 0..nv {
                let msg = &out_slots[v][u];
                if msg.is_empty() {
                    continue;
                }
                assert!(
                    msg.len() <= vb,
                    "virtual node {v} exceeded virtual bandwidth ({} > {vb})",
                    msg.len()
                );
                let hu = assignment.host_of[u];
                if hv == hu {
                    inboxes[u][v] = msg.clone();
                } else {
                    let mut rec = BitString::new();
                    rec.push_uint(v as u64, idw);
                    rec.push_uint(u as u64, idw);
                    rec.push_uint(msg.len() as u64, 8);
                    rec.extend_from(msg);
                    demands[hv].push((NodeId::from(hu), rec));
                }
            }
        }
        let delivered = route(host, demands)?;
        for per_host in delivered {
            for (_, rec) in per_host {
                let mut r = rec.reader();
                let v = r.read_uint(idw).expect("virtual src") as usize;
                let u = r.read_uint(idw).expect("virtual dst") as usize;
                let len = r.read_uint(8).expect("virtual len") as usize;
                let payload = r.read_bits(len).expect("virtual payload");
                inboxes[u][v] = payload;
            }
        }
        round += 1;
    }
    Ok(outputs
        .into_iter()
        .map(|o| o.expect("halted virtual node has output"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::Engine;

    /// Every node broadcasts its id and outputs the sum of all ids.
    struct SumIds(u64);
    impl NodeProgram for SumIds {
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            if round == 0 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                outbox.broadcast(&m);
                self.0 = ctx.id.0 as u64;
                Status::Continue
            } else {
                for (_, msg) in inbox.iter() {
                    self.0 += msg.reader().read_uint(ctx.id_width()).unwrap();
                }
                Status::Halt(self.0)
            }
        }
    }

    #[test]
    fn virtual_run_matches_direct_run() {
        let nv = 10;
        let direct = Engine::new(nv)
            .run((0..nv).map(|_| SumIds(0)).collect::<Vec<_>>())
            .unwrap();
        for hosts in [3usize, 5, 10] {
            let mut host = Session::new(Engine::new(hosts));
            let asg = Assignment::round_robin(nv, hosts);
            let out = run_virtual(&mut host, &asg, (0..nv).map(|_| SumIds(0)).collect()).unwrap();
            assert_eq!(out, direct.outputs, "hosts={hosts}");
            assert!(host.stats().rounds > 0);
        }
    }

    #[test]
    fn cohosted_messages_are_free() {
        // All virtual nodes on one host: zero host communication.
        let nv = 6;
        let mut host = Session::new(Engine::new(1));
        let asg = Assignment {
            host_of: vec![0; nv],
            hosts: 1,
        };
        let out = run_virtual(&mut host, &asg, (0..nv).map(|_| SumIds(0)).collect()).unwrap();
        assert_eq!(out, vec![15; 6]);
        assert_eq!(host.stats().messages, 0);
    }

    #[test]
    fn assignment_loads() {
        let a = Assignment::round_robin(10, 4);
        assert_eq!(a.max_load(), 3);
        assert_eq!(Assignment::round_robin(8, 4).max_load(), 2);
    }

    mod prop {
        use super::super::*;
        use super::SumIds;
        use cliquesim::Engine;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]
            #[test]
            fn prop_virtual_matches_direct(nv in 3usize..12, hosts in 2usize..6, seed in any::<u64>()) {
                // Random (deterministically seeded) assignment of virtual
                // nodes to hosts.
                use rand::{Rng, SeedableRng};
                let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
                let host_of: Vec<usize> = (0..nv).map(|_| rng.gen_range(0..hosts)).collect();
                let asg = Assignment { host_of, hosts };
                let direct = Engine::new(nv)
                    .run((0..nv).map(|_| SumIds(0)).collect::<Vec<_>>())
                    .unwrap();
                let mut host = Session::new(Engine::new(hosts));
                let out = run_virtual(&mut host, &asg, (0..nv).map(|_| SumIds(0)).collect()).unwrap();
                prop_assert_eq!(out, direct.outputs);
            }
        }
    }

    #[test]
    fn cost_accounting() {
        let c = SimulationCost::per_round(3, 5, 4);
        assert_eq!(c.factor, (9 * 5usize).div_ceil(4));
        let vs = RunStats {
            rounds: 10,
            messages: 7,
            bits: 100,
            max_message_bits: 5,
            ..RunStats::default()
        };
        assert_eq!(c.apply(&vs).rounds, 10 * c.factor);
    }
}
