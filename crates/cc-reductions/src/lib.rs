//! # cc-reductions — the fine-grained reductions of §7
//!
//! The machinery behind Figure 1 and Theorem 10 of Korhonen & Suomela
//! (SPAA 2018):
//!
//! * [`is_to_ds`] — the Figure 2 gadget reducing k-independent-set to
//!   k-dominating-set;
//! * [`simulate`] — running a larger (virtual) clique on the clique at
//!   hand, both packet-level and as cost accounting;
//! * [`thm10`] — the end-to-end k-IS-via-k-DS pipeline with measured
//!   overheads;
//! * [`coloring`] — the k-colouring → MaxIS clique blow-up \[46\];
//! * [`dhz`] — Boolean MM through (2−ε)-approximate APSP \[17\];
//! * [`atlas`] — Figure 1 itself as validated, renderable data.

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod atlas;
pub mod coloring;
pub mod dhz;
pub mod is_to_ds;
pub mod simulate;
pub mod thm10;

pub use atlas::{Arrow, Atlas, Bound, ProblemId, OMEGA};
pub use coloring::{
    coloring_blowup, extract_coloring, k_coloring_via_max_is, max_independent_set_naive,
};
pub use dhz::{boolean_mm_via_approx_apsp, mm_to_apsp_graph};
pub use is_to_ds::{GadgetVertex, IsToDsGadget};
pub use simulate::{run_virtual, Assignment, SimulationCost};
pub use thm10::{independent_set_via_dominating_set, paper_assignment, Thm10Outcome};
