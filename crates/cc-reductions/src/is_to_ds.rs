//! Theorem 10 / Figure 2: reducing k-independent-set to k-dominating-set.
//!
//! Given `G` on `n` vertices, the gadget graph `G′` has
//! `(k + k(k−1)/2)·n + 2k ≤ (k² + k + 2)·n` vertices:
//!
//! * `k` cliques `K_1, …, K_k`, each a copy of `V` (`v_i` denotes copy of
//!   `v` in `K_i`);
//! * for each pair `i < j` a *compatibility gadget*: an independent set
//!   `I_{i,j}` (again a copy of `V`) where `v_i` is adjacent to every
//!   `u_{i,j}` with `u ≠ v`, and `v_j` is adjacent to every `u_{i,j}` with
//!   `u ∉ N_G(v) ∪ {v}`;
//! * two *special* vertices `x_i, y_i` per clique, adjacent to all of
//!   `K_i` and nothing else.
//!
//! `G` has an independent set of size `k` **iff** `G′` has a dominating
//! set of size `k`: the specials force one dominator per clique, and the
//! compatibility gadgets force the chosen copies to name distinct,
//! non-adjacent vertices of `G`.

use cc_graph::Graph;

/// Vertex naming inside the gadget graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GadgetVertex {
    /// Copy `v` in clique `K_i` (`clique < k`).
    Clique {
        /// Which clique.
        clique: usize,
        /// Which original vertex.
        v: usize,
    },
    /// Copy `v` in the compatibility gadget of pair `(i, j)`, `i < j`.
    Compat {
        /// Smaller clique index of the pair.
        i: usize,
        /// Larger clique index of the pair.
        j: usize,
        /// Which original vertex.
        v: usize,
    },
    /// Special vertex `x_i` (`which = 0`) or `y_i` (`which = 1`).
    Special {
        /// Which clique the special guards.
        clique: usize,
        /// 0 for `x`, 1 for `y`.
        which: usize,
    },
}

/// The gadget graph together with its vertex-naming scheme.
#[derive(Clone, Debug)]
pub struct IsToDsGadget {
    /// The constructed graph `G′`.
    pub graph: Graph,
    n: usize,
    k: usize,
    pairs: Vec<(usize, usize)>,
}

impl IsToDsGadget {
    /// Build the gadget for parameter `k ≥ 1`.
    pub fn build(g: &Graph, k: usize) -> Self {
        assert!(k >= 1);
        let n = g.n();
        assert!(n >= 1);
        let pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
            .collect();
        let total = (k + pairs.len()) * n + 2 * k;
        let me = Self {
            graph: Graph::empty(total),
            n,
            k,
            pairs,
        };
        let mut gp = me.graph.clone();

        // Cliques K_i.
        for i in 0..k {
            for v in 0..n {
                for u in (v + 1)..n {
                    gp.add_edge(
                        me.id(GadgetVertex::Clique { clique: i, v }),
                        me.id(GadgetVertex::Clique { clique: i, v: u }),
                    );
                }
            }
        }
        // Compatibility gadgets.
        for (pi, &(i, j)) in me.pairs.iter().enumerate() {
            let _ = pi;
            for v in 0..n {
                let vi = me.id(GadgetVertex::Clique { clique: i, v });
                let vj = me.id(GadgetVertex::Clique { clique: j, v });
                for u in 0..n {
                    if u == v {
                        continue;
                    }
                    let uij = me.id(GadgetVertex::Compat { i, j, v: u });
                    gp.add_edge(vi, uij);
                    if !g.has_edge(v, u) {
                        gp.add_edge(vj, uij);
                    }
                }
            }
        }
        // Specials.
        for i in 0..k {
            for which in 0..2 {
                let s = me.id(GadgetVertex::Special { clique: i, which });
                for v in 0..n {
                    gp.add_edge(s, me.id(GadgetVertex::Clique { clique: i, v }));
                }
            }
        }
        Self { graph: gp, ..me }
    }

    /// Number of vertices of `G`.
    pub fn original_n(&self) -> usize {
        self.n
    }

    /// Parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Flat vertex id of a named gadget vertex.
    pub fn id(&self, v: GadgetVertex) -> usize {
        let (n, k) = (self.n, self.k);
        match v {
            GadgetVertex::Clique { clique, v } => {
                assert!(clique < k && v < n);
                clique * n + v
            }
            GadgetVertex::Compat { i, j, v } => {
                let p = self
                    .pairs
                    .iter()
                    .position(|&q| q == (i, j))
                    .expect("valid pair (i < j < k)");
                assert!(v < n);
                (k + p) * n + v
            }
            GadgetVertex::Special { clique, which } => {
                assert!(clique < k && which < 2);
                (k + self.pairs.len()) * n + 2 * clique + which
            }
        }
    }

    /// Inverse of [`IsToDsGadget::id`].
    pub fn name(&self, id: usize) -> GadgetVertex {
        let (n, k) = (self.n, self.k);
        assert!(id < self.graph.n());
        if id < k * n {
            GadgetVertex::Clique {
                clique: id / n,
                v: id % n,
            }
        } else if id < (k + self.pairs.len()) * n {
            let p = (id - k * n) / n;
            let (i, j) = self.pairs[p];
            GadgetVertex::Compat { i, j, v: id % n }
        } else {
            let r = id - (k + self.pairs.len()) * n;
            GadgetVertex::Special {
                clique: r / 2,
                which: r % 2,
            }
        }
    }

    /// The dominating set of `G′` induced by an independent set of `G`
    /// (the forward direction of the correspondence): `{v_i^i}`.
    pub fn dominating_set_for(&self, independent_set: &[usize]) -> Vec<usize> {
        assert_eq!(independent_set.len(), self.k);
        independent_set
            .iter()
            .enumerate()
            .map(|(i, &v)| self.id(GadgetVertex::Clique { clique: i, v }))
            .collect()
    }

    /// Recover an independent set of `G` from a dominating set of `G′`
    /// (the backward direction). Returns `None` if the set does not have
    /// the structure every size-≤k dominating set must have (one clique
    /// copy per clique) — which, by the theorem, only happens if the input
    /// was not actually dominating.
    pub fn extract_independent_set(&self, dominating: &[usize]) -> Option<Vec<usize>> {
        if dominating.len() > self.k {
            return None;
        }
        let mut per_clique: Vec<Option<usize>> = vec![None; self.k];
        for &d in dominating {
            match self.name(d) {
                GadgetVertex::Clique { clique, v } => {
                    if per_clique[clique].is_some() {
                        return None; // two dominators in one clique
                    }
                    per_clique[clique] = Some(v);
                }
                _ => return None, // specials/compat vertices never dominate x_i & y_i
            }
        }
        let picks: Vec<usize> = per_clique.into_iter().collect::<Option<Vec<_>>>()?;
        Some(picks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use proptest::prelude::*;

    #[test]
    fn gadget_size_bound_holds() {
        for (n, k) in [(4, 2), (5, 3), (3, 4), (6, 2)] {
            let g = gen::gnp(n, 0.5, (n * k) as u64);
            let gd = IsToDsGadget::build(&g, k);
            assert!(
                gd.graph.n() <= (k * k + k + 2) * n,
                "n={n} k={k}: {} > {}",
                gd.graph.n(),
                (k * k + k + 2) * n
            );
        }
    }

    #[test]
    fn naming_roundtrip() {
        let g = gen::gnp(5, 0.4, 1);
        let gd = IsToDsGadget::build(&g, 3);
        for id in 0..gd.graph.n() {
            assert_eq!(gd.id(gd.name(id)), id);
        }
    }

    #[test]
    fn forward_direction_dominates() {
        for seed in 0..6 {
            let n = 6;
            let g = gen::gnp(n, 0.4, seed);
            let k = 2;
            if let Some(is) = reference::find_independent_set(&g, k) {
                let gd = IsToDsGadget::build(&g, k);
                let ds = gd.dominating_set_for(&is);
                assert!(
                    reference::is_dominating_set(&gd.graph, &ds),
                    "seed {seed}: IS {is:?} must dominate the gadget"
                );
            }
        }
    }

    #[test]
    fn backward_direction_extracts_an_is() {
        for seed in 0..6 {
            let n = 5;
            let g = gen::gnp(n, 0.5, 100 + seed);
            let k = 2;
            let gd = IsToDsGadget::build(&g, k);
            if let Some(ds) = reference::find_dominating_set(&gd.graph, k) {
                let is = gd
                    .extract_independent_set(&ds)
                    .expect("DS must be structured");
                assert!(
                    reference::is_independent_set(&g, &is),
                    "seed {seed}: extracted {is:?} from {ds:?}"
                );
                // Distinctness.
                let mut sorted = is.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), k);
            }
        }
    }

    #[test]
    fn equivalence_on_all_small_graphs() {
        // Exhaustive over all 4-vertex graphs at k = 2: the heart of the
        // theorem as a finite check.
        for g in Graph::enumerate_all(4) {
            let gd = IsToDsGadget::build(&g, 2);
            let has_is = reference::find_independent_set(&g, 2).is_some();
            let has_ds = reference::find_dominating_set(&gd.graph, 2).is_some();
            assert_eq!(has_is, has_ds, "graph {g:?}");
        }
    }

    #[test]
    fn equivalence_spot_checks_k3() {
        for seed in 0..3 {
            let n = 4;
            let g = gen::gnp(n, 0.5, 200 + seed);
            let gd = IsToDsGadget::build(&g, 3);
            let has_is = reference::find_independent_set(&g, 3).is_some();
            let has_ds = reference::find_dominating_set(&gd.graph, 3).is_some();
            assert_eq!(has_is, has_ds, "seed {seed}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_equivalence_k2(seed in any::<u64>(), n in 3usize..7) {
            let g = gen::gnp(n, 0.5, seed);
            let gd = IsToDsGadget::build(&g, 2);
            let has_is = reference::find_independent_set(&g, 2).is_some();
            let has_ds = reference::find_dominating_set(&gd.graph, 2).is_some();
            prop_assert_eq!(has_is, has_ds);
        }
    }
}
