//! The k-colouring → maximum-independent-set reduction (§7, after \[46\]).
//!
//! "Replace each vertex v with k copies v_1, …, v_k connected into a
//! clique, and connect v_i and u_i if the edge {v,u} is present in the
//! original graph. The new graph has an independent set of size n if and
//! only if the original graph is k-colourable." The blow-up is the
//! constant factor k, so δ(k-COL) ≤ δ(MaxIS) in the fine-grained map.

use cc_graph::{reference, Graph};
use cc_routing::{all_to_all_broadcast, RouteError};
use cliquesim::Session;

/// Build the blow-up graph: vertex `(v, i)` has id `v·k + i`.
pub fn coloring_blowup(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1);
    let n = g.n();
    let mut b = Graph::empty(n * k);
    for v in 0..n {
        // Copies of v form a clique.
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(v * k + i, v * k + j);
            }
        }
    }
    for (v, u) in g.edges() {
        for i in 0..k {
            b.add_edge(v * k + i, u * k + i);
        }
    }
    b
}

/// Recover a proper k-colouring from a size-`n` independent set of the
/// blow-up: vertex `v` gets the colour `i` of its selected copy.
/// Returns `None` if the set does not select exactly one copy per vertex.
pub fn extract_coloring(independent_set: &[usize], n: usize, k: usize) -> Option<Vec<usize>> {
    let mut colors = vec![usize::MAX; n];
    for &id in independent_set {
        let (v, i) = (id / k, id % k);
        if v >= n || colors[v] != usize::MAX {
            return None;
        }
        colors[v] = i;
    }
    colors.iter().all(|&c| c != usize::MAX).then_some(colors)
}

/// The naive `O(n/log n · k)`-round distributed MaxIS: gather the whole
/// graph at every node (each row broadcast once), solve locally, agree on
/// the lexicographically-least optimum. The paper's Figure 1 places MaxIS
/// at exponent 1 — this is that upper bound.
pub fn max_independent_set_naive(
    session: &mut Session,
    g: &Graph,
) -> Result<Vec<usize>, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    let payloads = (0..n)
        .map(|v| g.input_row(cliquesim::NodeId::from(v)))
        .collect();
    let views = all_to_all_broadcast(session, payloads)?;
    // All views are identical; reconstruct once (locally each node does it).
    let mut whole = Graph::empty(n);
    for (v, row) in views[0].iter().enumerate() {
        for u in 0..n {
            if u == v {
                continue;
            }
            let slot = if u < v { u } else { u - 1 };
            if row.get(slot) && !whole.has_edge(u, v) {
                whole.add_edge(u, v);
            }
        }
    }
    Ok(reference::find_maximum_independent_set(&whole))
}

/// Decide k-colourability through the blow-up + MaxIS pipeline, returning
/// a witness colouring. Runs MaxIS on a `k·n`-node clique (the constant
/// blow-up of the reduction); the caller accounts the `O(k²)` simulation
/// factor when mapping the cost back to `n` nodes.
pub fn k_coloring_via_max_is(
    g: &Graph,
    k: usize,
) -> Result<(Option<Vec<usize>>, cliquesim::RunStats), RouteError> {
    let n = g.n();
    let blowup = coloring_blowup(g, k);
    let mut session = Session::new(cliquesim::Engine::new(blowup.n()));
    let is = max_independent_set_naive(&mut session, &blowup)?;
    let coloring = (is.len() >= n)
        .then(|| extract_coloring(&is, n, k))
        .flatten()
        .filter(|c| reference::is_proper_coloring(g, c));
    Ok((coloring, session.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::gen;
    use cliquesim::Engine;

    #[test]
    fn blowup_structure() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let b = coloring_blowup(&g, 2);
        assert_eq!(b.n(), 6);
        // Copies of the same vertex: clique.
        assert!(b.has_edge(0, 1));
        // Edge {0,1} lifts colour-wise.
        assert!(b.has_edge(0, 2));
        assert!(b.has_edge(1, 3));
        assert!(!b.has_edge(0, 3));
        // Non-edge {0,2} of g does not lift.
        assert!(!b.has_edge(0, 4));
    }

    #[test]
    fn blowup_is_iff_colorable_exhaustive() {
        for g in Graph::enumerate_all(4) {
            for k in 1..=3usize {
                let b = coloring_blowup(&g, k);
                let alpha = reference::max_independent_set_size(&b);
                let colorable = reference::find_coloring(&g, k).is_some();
                assert_eq!(alpha == 4, colorable, "graph {g:?} k={k} alpha={alpha}");
                assert!(alpha <= 4, "independent sets cannot exceed n");
            }
        }
    }

    #[test]
    fn extraction_produces_proper_colorings() {
        let (g, _) = gen::k_colorable(7, 3, 0.6, 5);
        let b = coloring_blowup(&g, 3);
        let alpha = reference::max_independent_set_size(&b);
        assert_eq!(alpha, 7);
        let is = reference::find_independent_set(&b, 7).unwrap();
        let colors = extract_coloring(&is, 7, 3).expect("one copy per vertex");
        assert!(reference::is_proper_coloring(&g, &colors));
    }

    #[test]
    fn distributed_max_is_matches_reference() {
        for seed in 0..3 {
            let n = 10;
            let g = gen::gnp(n, 0.4, seed);
            let mut s = Session::new(Engine::new(n));
            let is = max_independent_set_naive(&mut s, &g).unwrap();
            assert!(reference::is_independent_set(&g, &is));
            assert_eq!(
                is.len(),
                reference::max_independent_set_size(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn pipeline_decides_colorability() {
        let (g, _) = gen::k_colorable(6, 2, 0.7, 9);
        let (colors, stats) = k_coloring_via_max_is(&g, 2).unwrap();
        let c = colors.expect("2-colourable by construction");
        assert!(reference::is_proper_coloring(&g, &c));
        assert!(stats.rounds > 0);
        // An odd cycle is not 2-colourable.
        let (colors, _) = k_coloring_via_max_is(&gen::cycle(5), 2).unwrap();
        assert!(colors.is_none());
    }
}
