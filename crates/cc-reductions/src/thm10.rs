//! Theorem 10 end-to-end: k-independent-set through a k-dominating-set
//! oracle.
//!
//! Pipeline: build the Figure 2 gadget `G′`, run Theorem 9's dominating-set
//! algorithm on the `n′ = O(k²n)`-node virtual clique, extract the
//! independent set, and charge the host clique the simulation cost
//! (`O(k^{2δ+4} n^δ)` rounds for a `δ`-exponent oracle — each host
//! simulates `O(k²)` gadget vertices, so a virtual round costs `O(k⁴)`
//! host rounds and the oracle itself runs on `O(k²n)` nodes).

use cc_graph::Graph;
use cc_param::dominating_set;
use cc_routing::RouteError;
use cliquesim::{BitString, Engine, RunStats, Session};

use crate::is_to_ds::{GadgetVertex, IsToDsGadget};
use crate::simulate::{Assignment, SimulationCost};

/// Everything measured by one Theorem 10 run.
#[derive(Debug)]
pub struct Thm10Outcome {
    /// The independent set of `G` found (size `k`), if any.
    pub independent_set: Option<Vec<usize>>,
    /// Cost of the dominating-set oracle on the `n′`-node virtual clique.
    pub virtual_stats: RunStats,
    /// Host-clique cost after applying the simulation factor.
    pub host_stats: RunStats,
    /// Host rounds charged per virtual round.
    pub factor: usize,
    /// Virtual nodes per host (the `O(k²)` of the theorem).
    pub max_load: usize,
    /// Size of the gadget clique.
    pub n_virtual: usize,
}

/// The vertex-to-host assignment used in the paper's simulation argument:
/// node `v` of the real clique simulates every copy `v_i` and `v_{i,j}`
/// (it can derive all their gadget edges from its local view of `G`),
/// and nodes `1` and `2` simulate the specials `x_i` / `y_i`.
pub fn paper_assignment(gadget: &IsToDsGadget, hosts: usize) -> Assignment {
    assert!(hosts >= 2, "the paper assigns specials to nodes 1 and 2");
    let host_of = (0..gadget.graph.n())
        .map(|id| match gadget.name(id) {
            GadgetVertex::Clique { v, .. } | GadgetVertex::Compat { v, .. } => v,
            GadgetVertex::Special { which, .. } => which, // x_i → node 0, y_i → node 1
        })
        .collect();
    Assignment { host_of, hosts }
}

/// Run the full Theorem 10 pipeline on `g` for parameter `k`.
pub fn independent_set_via_dominating_set(g: &Graph, k: usize) -> Result<Thm10Outcome, RouteError> {
    let n = g.n();
    assert!(n >= 2);
    let gadget = IsToDsGadget::build(g, k);
    let n_virtual = gadget.graph.n();

    // Oracle run on the virtual clique.
    let mut vsession = Session::new(Engine::new(n_virtual));
    let ds = dominating_set(&mut vsession, &gadget.graph, k)?;
    let independent_set = ds.and_then(|d| gadget.extract_independent_set(&d));

    // Simulation accounting.
    let assignment = paper_assignment(&gadget, n);
    let max_load = assignment.max_load();
    let cost = SimulationCost::per_round(
        max_load,
        BitString::width_for(n_virtual),
        BitString::width_for(n),
    );
    let virtual_stats = vsession.stats();
    let host_stats = cost.apply(&virtual_stats);
    Ok(Thm10Outcome {
        independent_set,
        virtual_stats,
        host_stats,
        factor: cost.factor,
        max_load,
        n_virtual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};

    #[test]
    fn pipeline_agrees_with_direct_detection() {
        for seed in 0..5 {
            let n = 8;
            let g = gen::gnp(n, 0.45, seed);
            let k = 2;
            let out = independent_set_via_dominating_set(&g, k).unwrap();
            let expect = reference::find_independent_set(&g, k).is_some();
            assert_eq!(out.independent_set.is_some(), expect, "seed {seed}");
            if let Some(is) = out.independent_set {
                assert!(reference::is_independent_set(&g, &is));
                assert_eq!(is.len(), k);
            }
        }
    }

    #[test]
    fn load_is_order_k_squared() {
        let g = gen::gnp(10, 0.3, 1);
        for k in 2..=3 {
            let gadget = IsToDsGadget::build(&g, k);
            let asg = paper_assignment(&gadget, 10);
            // Each vertex hosts k + C(k,2) copies; specials add ≤ k each to
            // hosts 0 and 1.
            let bound = k + k * (k - 1) / 2 + k;
            assert!(
                asg.max_load() <= bound,
                "k={k}: load {} > {bound}",
                asg.max_load()
            );
        }
    }

    #[test]
    fn factor_is_polynomial_in_k_only() {
        // Host rounds per virtual round must not grow with n.
        let mut factors = Vec::new();
        for n in [8usize, 12, 16] {
            let g = gen::gnp(n, 0.4, n as u64);
            let gadget = IsToDsGadget::build(&g, 2);
            let asg = paper_assignment(&gadget, n);
            let cost = SimulationCost::per_round(
                asg.max_load(),
                BitString::width_for(gadget.graph.n()),
                BitString::width_for(n),
            );
            factors.push(cost.factor);
        }
        // The factor is ⌈c²·B′/B⌉; B′/B = 1 + O(log k / log n) decays
        // towards c², so allow the small rounding wobble.
        let (lo, hi) = (
            *factors.iter().min().unwrap() as f64,
            *factors.iter().max().unwrap() as f64,
        );
        assert!(
            hi / lo <= 1.25,
            "factor should be ~constant in n: {factors:?}"
        );
    }

    #[test]
    fn planted_instance_found_through_the_gadget() {
        let (g, planted) = gen::planted_independent_set(9, 2, 0.7, 42);
        assert!(reference::is_independent_set(&g, &planted));
        let out = independent_set_via_dominating_set(&g, 2).unwrap();
        let is = out.independent_set.expect("planted IS found via gadget");
        assert!(reference::is_independent_set(&g, &is));
    }
}
