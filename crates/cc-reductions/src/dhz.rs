//! The Dor–Halperin–Zwick reduction: Boolean MM ≤ (2−ε)-approximate APSP.
//!
//! Figure 1's arrow from "APSP w/ud/(2−ε)" to "Boolean MM" (\[17\]): to
//! compute the Boolean product `C = A·B`, build the 3n-vertex tripartite
//! graph with layers `X, Y, Z` where `x_i ∼ y_k` iff `A_{ik}` and
//! `y_k ∼ z_j` iff `B_{kj}`. Then `C_{ij} = 1` iff `d(x_i, z_j) = 2`, and
//! otherwise `d(x_i, z_j) ≥ 4`; any better-than-2 approximation separates
//! the two cases. The paper notes the reduction *breaks down* at exactly
//! 2-approximate APSP — the gap this module makes concrete.

use cc_graph::{WeightedGraph, INF};
use cc_matmul::MatmulError;
use cc_paths::apsp_approx;
use cliquesim::{Engine, RunStats, Session};

/// Build the tripartite reduction graph on `3n` vertices:
/// `X = 0..n`, `Y = n..2n`, `Z = 2n..3n`, unit weights.
pub fn mm_to_apsp_graph(a: &[Vec<bool>], b: &[Vec<bool>]) -> WeightedGraph {
    let n = a.len();
    assert!(a.iter().all(|r| r.len() == n) && b.len() == n && b.iter().all(|r| r.len() == n));
    let mut g = WeightedGraph::empty(3 * n);
    for i in 0..n {
        for k in 0..n {
            if a[i][k] {
                g.set_weight(i, n + k, 1);
            }
        }
    }
    for k in 0..n {
        for j in 0..n {
            if b[k][j] {
                g.set_weight(n + k, 2 * n + j, 1);
            }
        }
    }
    g
}

/// Compute the Boolean product through a `(2−ε)`-approximate APSP oracle
/// (our scale-rounding `(1+ε′)`-APSP with `ε′ < 1`). Runs on a `3n`-node
/// clique; returns the product and the oracle's cost.
pub fn boolean_mm_via_approx_apsp(
    a: &[Vec<bool>],
    b: &[Vec<bool>],
    eps: f64,
) -> Result<(Vec<Vec<bool>>, RunStats), MatmulError> {
    assert!(
        eps > 0.0 && eps < 1.0,
        "need a strictly better-than-2 approximation"
    );
    let n = a.len();
    let g = mm_to_apsp_graph(a, b);
    let mut session = Session::new(Engine::new(3 * n));
    let dist = apsp_approx(&mut session, &g, eps)?;
    let mut c = vec![vec![false; n]; n];
    for i in 0..n {
        for j in 0..n {
            let d = dist.get(i, 2 * n + j);
            // True distance is 2 or ≥ 4; a (1+ε)-approximation with ε < 1
            // reports < 4 exactly in the first case.
            c[i][j] = d < INF && (d as f64) < 4.0;
        }
    }
    Ok((c, session.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::reference;
    use cc_matmul::{mm_local, BoolSemiring, Matrix};
    use rand::{Rng, SeedableRng};

    fn random(n: usize, p: f64, seed: u64) -> Vec<Vec<bool>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..n).map(|_| rng.gen_bool(p)).collect())
            .collect()
    }

    #[test]
    fn tripartite_distances_are_2_or_at_least_4() {
        let a = random(5, 0.4, 1);
        let b = random(5, 0.4, 2);
        let g = mm_to_apsp_graph(&a, &b);
        let d = reference::floyd_warshall(&g);
        for i in 0..5 {
            for j in 0..5 {
                let dij = d.get(i, 10 + j);
                assert!(dij == 2 || dij >= 4, "d(x{i}, z{j}) = {dij}");
            }
        }
    }

    #[test]
    fn reduction_computes_boolean_product() {
        for seed in 0..3 {
            let n = 5;
            let a = random(n, 0.45, 10 + seed);
            let b = random(n, 0.45, 20 + seed);
            let (got, stats) = boolean_mm_via_approx_apsp(&a, &b, 0.5).unwrap();
            let am = Matrix::from_rows(a.clone());
            let bm = Matrix::from_rows(b.clone());
            let expect = mm_local(&BoolSemiring, &am, &bm);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(got[i][j], expect.get(i, j), "seed {seed} ({i},{j})");
                }
            }
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn empty_matrices_give_empty_product() {
        let z = vec![vec![false; 4]; 4];
        let (got, _) = boolean_mm_via_approx_apsp(&z, &z, 0.5).unwrap();
        assert!(got.iter().flatten().all(|&b| !b));
    }
}
