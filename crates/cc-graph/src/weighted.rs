//! Weighted graphs and distance matrices.
//!
//! Section 7 of the paper considers weighted variants of APSP/SSSP and
//! matrix problems, always under the convention that "edge weights and
//! matrix entries are assumed to be encodable in O(log n) bits". We use
//! `u64` weights with an explicit [`INF`] marker for absent edges; the
//! simulator-side encodings bound entries to the bandwidth budget.

use crate::graph::Graph;

/// Distance value for "unreachable" / "no edge". Chosen so that
/// `INF + w` never overflows for any legal weight.
pub const INF: u64 = u64::MAX / 4;

/// Saturating addition that keeps `INF` absorbing.
pub fn dist_add(a: u64, b: u64) -> u64 {
    if a >= INF || b >= INF {
        INF
    } else {
        (a + b).min(INF)
    }
}

/// An undirected graph with non-negative integer edge weights.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WeightedGraph {
    n: usize,
    /// Row-major `n × n`; `w[u][v] == INF` means no edge; diagonal is 0.
    w: Vec<u64>,
}

impl WeightedGraph {
    /// Graph with no edges.
    pub fn empty(n: usize) -> Self {
        let mut w = vec![INF; n * n];
        for v in 0..n {
            w[v * n + v] = 0;
        }
        Self { n, w }
    }

    /// Lift an unweighted graph (every edge gets weight 1).
    pub fn from_graph(g: &Graph) -> Self {
        let mut wg = Self::empty(g.n());
        for (u, v) in g.edges() {
            wg.set_weight(u, v, 1);
        }
        wg
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of edge `{u,v}`, `INF` if absent, 0 on the diagonal.
    pub fn weight(&self, u: usize, v: usize) -> u64 {
        self.w[u * self.n + v]
    }

    /// Insert/overwrite edge `{u,v}` with weight `w` (symmetric).
    pub fn set_weight(&mut self, u: usize, v: usize, weight: u64) {
        assert!(u != v, "no self-loop weights");
        assert!(weight < INF, "weight too large");
        self.w[u * self.n + v] = weight;
        self.w[v * self.n + u] = weight;
    }

    /// Whether `{u,v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.w[u * self.n + v] < INF
    }

    /// The underlying unweighted graph.
    pub fn skeleton(&self) -> Graph {
        let mut g = Graph::empty(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The largest finite weight, or 0 for the empty graph.
    pub fn max_weight(&self) -> u64 {
        self.w
            .iter()
            .copied()
            .filter(|&x| x < INF)
            .max()
            .unwrap_or(0)
    }

    /// Row `u` of the weight matrix (the input of node `u` in the simulator).
    pub fn row(&self, u: usize) -> &[u64] {
        &self.w[u * self.n..(u + 1) * self.n]
    }
}

/// A dense `n × n` distance (or generic `u64`) matrix, row-major.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DistMatrix {
    n: usize,
    d: Vec<u64>,
}

impl DistMatrix {
    /// All-`INF` matrix with zero diagonal.
    pub fn infinite(n: usize) -> Self {
        let mut d = vec![INF; n * n];
        for v in 0..n {
            d[v * n + v] = 0;
        }
        Self { n, d }
    }

    /// Build from row-major data.
    pub fn from_rows(n: usize, d: Vec<u64>) -> Self {
        assert_eq!(d.len(), n * n);
        Self { n, d }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(u, v)`.
    pub fn get(&self, u: usize, v: usize) -> u64 {
        self.d[u * self.n + v]
    }

    /// Set entry `(u, v)`.
    pub fn set(&mut self, u: usize, v: usize, val: u64) {
        self.d[u * self.n + v] = val;
    }

    /// Row `u` as a slice.
    pub fn row(&self, u: usize) -> &[u64] {
        &self.d[u * self.n..(u + 1) * self.n]
    }

    /// Maximum *finite* entry (0 if none).
    pub fn max_finite(&self) -> u64 {
        self.d
            .iter()
            .copied()
            .filter(|&x| x < INF)
            .max()
            .unwrap_or(0)
    }

    /// Largest relative error of `self` against a reference matrix, over
    /// entries where the reference is finite and nonzero; used to validate
    /// `(1+ε)`-approximate APSP. Entries where the reference is `INF` must
    /// be `INF` in `self` too (else returns `f64::INFINITY`).
    pub fn max_relative_error(&self, exact: &DistMatrix) -> f64 {
        assert_eq!(self.n, exact.n);
        let mut worst: f64 = 0.0;
        for i in 0..self.n * self.n {
            let (a, e) = (self.d[i], exact.d[i]);
            if e >= INF {
                if a < INF {
                    return f64::INFINITY;
                }
                continue;
            }
            if a >= INF {
                return f64::INFINITY;
            }
            if e == 0 {
                if a != 0 {
                    return f64::INFINITY;
                }
                continue;
            }
            worst = worst.max((a as f64 - e as f64).abs() / e as f64);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist_add_saturates() {
        assert_eq!(dist_add(3, 4), 7);
        assert_eq!(dist_add(INF, 4), INF);
        assert_eq!(dist_add(4, INF), INF);
        assert_eq!(dist_add(INF, INF), INF);
    }

    #[test]
    fn weighted_graph_symmetric() {
        let mut g = WeightedGraph::empty(3);
        g.set_weight(0, 2, 5);
        assert_eq!(g.weight(0, 2), 5);
        assert_eq!(g.weight(2, 0), 5);
        assert_eq!(g.weight(0, 1), INF);
        assert_eq!(g.weight(1, 1), 0);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn from_graph_unit_weights() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let wg = WeightedGraph::from_graph(&g);
        assert_eq!(wg.weight(0, 1), 1);
        assert_eq!(wg.weight(0, 2), INF);
        assert_eq!(wg.skeleton(), g);
    }

    #[test]
    fn dist_matrix_roundtrip() {
        let mut d = DistMatrix::infinite(3);
        d.set(0, 1, 7);
        assert_eq!(d.get(0, 1), 7);
        assert_eq!(d.get(1, 0), INF);
        assert_eq!(d.get(2, 2), 0);
        assert_eq!(d.row(0), &[0, 7, INF]);
        assert_eq!(d.max_finite(), 7);
    }

    #[test]
    fn relative_error_checks() {
        let mut exact = DistMatrix::infinite(2);
        exact.set(0, 1, 10);
        exact.set(1, 0, 10);
        let mut approx = exact.clone();
        approx.set(0, 1, 12);
        assert!((approx.max_relative_error(&exact) - 0.2).abs() < 1e-12);
        // INF mismatch is flagged.
        let mut bad = exact.clone();
        bad.set(1, 0, INF);
        assert_eq!(bad.max_relative_error(&exact), f64::INFINITY);
    }
}
