//! Deterministic workload generators.
//!
//! Every generator takes an explicit seed and uses ChaCha8, so experiments
//! are replayable bit-for-bit. Planted instances come with the planted
//! witness so tests can assert detection without re-solving.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::graph::Graph;
use crate::weighted::WeightedGraph;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Erdős–Rényi `G(n, p)`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut r = rng(seed);
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if r.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// `G(n, p)` with uniformly random weights in `1..=max_w` on its edges.
pub fn gnp_weighted(n: usize, p: f64, max_w: u64, seed: u64) -> WeightedGraph {
    let mut r = rng(seed);
    let mut g = WeightedGraph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if r.gen_bool(p) {
                g.set_weight(u, v, r.gen_range(1..=max_w));
            }
        }
    }
    g
}

/// A dense graph containing a planted independent set of size `k`.
///
/// Returns `(graph, planted_set)`. Outside the planted set, edges appear
/// with probability `p`; between set members, never.
pub fn planted_independent_set(n: usize, k: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k <= n);
    let mut r = rng(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut r);
    let planted: Vec<usize> = verts[..k].to_vec();
    let in_set = {
        let mut m = vec![false; n];
        for &v in &planted {
            m[v] = true;
        }
        m
    };
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if in_set[u] && in_set[v] {
                continue;
            }
            if r.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    (g, planted)
}

/// A graph containing a planted dominating set of size `k`.
///
/// Every vertex outside the planted set is attached to a uniformly random
/// planted vertex, guaranteeing domination; additional `G(n,p)` edges are
/// overlaid. Returns `(graph, planted_set)`.
pub fn planted_dominating_set(n: usize, k: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k >= 1 && k <= n);
    let mut r = rng(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut r);
    let planted: Vec<usize> = verts[..k].to_vec();
    let mut g = gnp(n, p, r.gen());
    for v in 0..n {
        if !planted.contains(&v) {
            let d = planted[r.gen_range(0..k)];
            g.add_edge(v, d);
        }
    }
    (g, planted)
}

/// A graph with a planted clique of size `k` over `G(n, p)` noise.
pub fn planted_clique(n: usize, k: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k <= n);
    let mut r = rng(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut r);
    let planted: Vec<usize> = verts[..k].to_vec();
    let mut g = gnp(n, p, r.gen());
    for (i, &u) in planted.iter().enumerate() {
        for &v in planted.iter().skip(i + 1) {
            g.add_edge(u, v);
        }
    }
    (g, planted)
}

/// A graph that is `k`-colourable by construction: vertices are split into
/// `k` colour classes and only cross-class edges are added (each with
/// probability `p`). Returns `(graph, colouring)`.
pub fn k_colorable(n: usize, k: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k >= 1);
    let mut r = rng(seed);
    let colors: Vec<usize> = (0..n).map(|_| r.gen_range(0..k)).collect();
    let mut g = Graph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if colors[u] != colors[v] && r.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    (g, colors)
}

/// A graph containing a Hamiltonian path by construction, with `G(n,p)`
/// noise on top. Returns `(graph, path)` where `path` visits every vertex.
pub fn hamiltonian(n: usize, p: f64, seed: u64) -> (Graph, Vec<usize>) {
    let mut r = rng(seed);
    let mut path: Vec<usize> = (0..n).collect();
    path.shuffle(&mut r);
    let mut g = gnp(n, p, r.gen());
    for w in path.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    (g, path)
}

/// The path `0 − 1 − … − (n−1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n {
        g.add_edge(v - 1, v);
    }
    g
}

/// The cycle `0 − 1 − … − (n−1) − 0` (needs `n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycles need at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// The star with centre 0 and `n−1` leaves.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::empty(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// A graph with a planted vertex cover of size `k`: every edge touches one
/// of `k` randomly chosen centre vertices (each non-centre attaches to
/// `0..=max_deg` random centres). Returns `(graph, centres)`.
pub fn planted_vertex_cover(n: usize, k: usize, max_deg: usize, seed: u64) -> (Graph, Vec<usize>) {
    assert!(k <= n);
    let mut r = rng(seed);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(&mut r);
    let centers: Vec<usize> = verts[..k].to_vec();
    let mut g = Graph::empty(n);
    for v in 0..n {
        if centers.contains(&v) {
            continue;
        }
        for _ in 0..r.gen_range(0..=max_deg) {
            let c = centers[r.gen_range(0..k.max(1))];
            if c != v {
                g.add_edge(v, c);
            }
        }
    }
    (g, centers)
}

/// Disjoint union of `parts` cliques as equal as possible (a cluster graph;
/// useful as a small-dominating-set / many-components workload).
pub fn cliques(n: usize, parts: usize) -> Graph {
    assert!(parts >= 1);
    let mut g = Graph::empty(n);
    for start in 0..parts {
        let members: Vec<usize> = (start..n).step_by(parts).collect();
        for (i, &u) in members.iter().enumerate() {
            for &v in members.iter().skip(i + 1) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
    }

    #[test]
    fn gnp_is_seed_deterministic() {
        assert_eq!(gnp(20, 0.3, 42), gnp(20, 0.3, 42));
        assert_ne!(gnp(20, 0.3, 42), gnp(20, 0.3, 43));
    }

    #[test]
    fn planted_is_really_independent() {
        for seed in 0..5 {
            let (g, set) = planted_independent_set(30, 5, 0.7, seed);
            assert_eq!(set.len(), 5);
            assert!(reference::is_independent_set(&g, &set));
        }
    }

    #[test]
    fn planted_ds_dominates() {
        for seed in 0..5 {
            let (g, set) = planted_dominating_set(30, 3, 0.1, seed);
            assert!(reference::is_dominating_set(&g, &set));
        }
    }

    #[test]
    fn planted_clique_is_clique() {
        let (g, set) = planted_clique(25, 6, 0.2, 7);
        for (i, &u) in set.iter().enumerate() {
            for &v in set.iter().skip(i + 1) {
                assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn k_colorable_is_proper() {
        let (g, colors) = k_colorable(40, 4, 0.6, 3);
        for (u, v) in g.edges() {
            assert_ne!(colors[u], colors[v]);
        }
    }

    #[test]
    fn hamiltonian_path_is_present() {
        let (g, p) = hamiltonian(15, 0.1, 9);
        assert_eq!(p.len(), 15);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(cliques(6, 2).edge_count(), 2 * 3); // two triangles
        let g = cliques(9, 3);
        assert!(g.has_edge(0, 3));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn planted_vc_is_covered_by_centers() {
        for seed in 0..4 {
            let (g, centers) = planted_vertex_cover(40, 5, 3, seed);
            assert!(reference::is_vertex_cover(&g, &centers));
            assert_eq!(centers.len(), 5);
        }
    }

    #[test]
    fn weighted_gnp_bounds() {
        let g = gnp_weighted(15, 0.5, 9, 4);
        for u in 0..15 {
            for v in 0..15 {
                if g.has_edge(u, v) {
                    let w = g.weight(u, v);
                    assert!((1..=9).contains(&w));
                }
            }
        }
    }
}
