//! Centralised reference solvers.
//!
//! Every distributed algorithm in this workspace is tested against these
//! sequential implementations. They favour obvious correctness over speed:
//! brute force where brute force is feasible, classic textbook algorithms
//! otherwise. None of them is ever used *inside* a distributed algorithm's
//! communication structure (local computation is free in the model, so nodes
//! may call them on locally known data).

use crate::graph::Graph;
use crate::weighted::{dist_add, DistMatrix, WeightedGraph, INF};

// ---------------------------------------------------------------------
// Set predicates
// ---------------------------------------------------------------------

/// No two vertices of `set` are adjacent.
pub fn is_independent_set(g: &Graph, set: &[usize]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in set.iter().skip(i + 1) {
            if u == v || g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Every vertex is in `set` or adjacent to a member of `set`.
pub fn is_dominating_set(g: &Graph, set: &[usize]) -> bool {
    let n = g.n();
    let mut dominated = vec![false; n];
    for &u in set {
        dominated[u] = true;
        for v in g.neighbors(u) {
            dominated[v] = true;
        }
    }
    dominated.into_iter().all(|d| d)
}

/// Every edge has an endpoint in `set`.
pub fn is_vertex_cover(g: &Graph, set: &[usize]) -> bool {
    let mut inset = vec![false; g.n()];
    for &u in set {
        inset[u] = true;
    }
    g.edges().all(|(u, v)| inset[u] || inset[v])
}

/// All `set` members pairwise adjacent.
pub fn is_clique(g: &Graph, set: &[usize]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in set.iter().skip(i + 1) {
            if !g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// `colors[u] != colors[v]` for every edge.
pub fn is_proper_coloring(g: &Graph, colors: &[usize]) -> bool {
    colors.len() == g.n() && g.edges().all(|(u, v)| colors[u] != colors[v])
}

/// `order` visits all vertices exactly once and consecutive ones are adjacent.
pub fn is_hamiltonian_path(g: &Graph, order: &[usize]) -> bool {
    let n = g.n();
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &v in order {
        if v >= n || seen[v] {
            return false;
        }
        seen[v] = true;
    }
    order.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

// ---------------------------------------------------------------------
// Combination enumeration
// ---------------------------------------------------------------------

/// Call `f` on every size-`k` subset of `0..n` (lexicographic order) until
/// `f` returns `true`; returns the first subset that satisfied `f`.
pub fn find_combination(
    n: usize,
    k: usize,
    mut f: impl FnMut(&[usize]) -> bool,
) -> Option<Vec<usize>> {
    if k > n {
        return None;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        if f(&idx) {
            return Some(idx);
        }
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return None;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

// ---------------------------------------------------------------------
// Brute-force decisions (small n / small k only; used as ground truth)
// ---------------------------------------------------------------------

/// Some independent set of size `k`, if one exists.
pub fn find_independent_set(g: &Graph, k: usize) -> Option<Vec<usize>> {
    if k == 0 {
        return Some(vec![]);
    }
    find_combination(g.n(), k, |s| is_independent_set(g, s))
}

/// Some dominating set of size `k`, if one exists.
pub fn find_dominating_set(g: &Graph, k: usize) -> Option<Vec<usize>> {
    find_combination(g.n(), k, |s| is_dominating_set(g, s))
}

/// Some clique of size `k`, if one exists.
pub fn find_clique(g: &Graph, k: usize) -> Option<Vec<usize>> {
    if k == 0 {
        return Some(vec![]);
    }
    find_combination(g.n(), k, |s| is_clique(g, s))
}

/// Whether G contains a vertex cover of size at most `k`, via the classic
/// `O(2^k · m)` bounded search tree. Returns a cover if it exists (its size
/// may be less than `k`).
pub fn find_vertex_cover(g: &Graph, k: usize) -> Option<Vec<usize>> {
    fn rec(g: &Graph, k: usize, picked: &mut Vec<usize>, removed: &mut Vec<bool>) -> bool {
        // Find any uncovered edge.
        let mut edge = None;
        'outer: for u in 0..g.n() {
            if removed[u] {
                continue;
            }
            for v in g.neighbors(u) {
                if !removed[v] {
                    edge = Some((u, v));
                    break 'outer;
                }
            }
        }
        let Some((u, v)) = edge else { return true };
        if k == 0 {
            return false;
        }
        for w in [u, v] {
            picked.push(w);
            removed[w] = true;
            if rec(g, k - 1, picked, removed) {
                return true;
            }
            removed[w] = false;
            picked.pop();
        }
        false
    }
    let mut picked = Vec::new();
    let mut removed = vec![false; g.n()];
    rec(g, k, &mut picked, &mut removed).then_some(picked)
}

/// Size of a minimum vertex cover (exact; exponential in the answer).
/// Decomposes by connected component first, so disconnected instances
/// only pay for their largest component.
pub fn min_vertex_cover_size(g: &Graph) -> usize {
    let n = g.n();
    let comp = components(g);
    let mut verts_of: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for v in 0..n {
        verts_of.entry(comp[v]).or_default().push(v);
    }
    verts_of
        .values()
        .map(|verts| {
            let sub = g.induced(verts);
            (0..=sub.n())
                .find(|&k| find_vertex_cover(&sub, k).is_some())
                .expect("V covers everything")
        })
        .sum()
}

/// Maximum independent set size (exact; uses VC duality on the complement
/// relationship `α(G) = n − τ(G)`).
pub fn max_independent_set_size(g: &Graph) -> usize {
    g.n() - min_vertex_cover_size(g)
}

/// An explicit maximum independent set (exact): per connected component,
/// find a minimum vertex cover witness and take its complement.
pub fn find_maximum_independent_set(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let comp = components(g);
    let mut verts_of: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for v in 0..n {
        verts_of.entry(comp[v]).or_default().push(v);
    }
    let mut is = Vec::new();
    for verts in verts_of.values() {
        let sub = g.induced(verts);
        let tau = (0..=sub.n())
            .find(|&k| find_vertex_cover(&sub, k).is_some())
            .expect("V covers everything");
        let cover = find_vertex_cover(&sub, tau).expect("tau is attainable");
        let covered: Vec<bool> = {
            let mut m = vec![false; sub.n()];
            for &c in &cover {
                m[c] = true;
            }
            m
        };
        for (i, &v) in verts.iter().enumerate() {
            if !covered[i] {
                is.push(v);
            }
        }
    }
    is.sort_unstable();
    debug_assert!(is_independent_set(g, &is));
    is
}

/// Is G properly colourable with `k` colours? Backtracking; returns a
/// colouring if one exists.
pub fn find_coloring(g: &Graph, k: usize) -> Option<Vec<usize>> {
    let n = g.n();
    if n == 0 {
        return Some(vec![]);
    }
    if k == 0 {
        return None;
    }
    let mut colors = vec![usize::MAX; n];
    fn rec(g: &Graph, k: usize, v: usize, colors: &mut Vec<usize>) -> bool {
        if v == g.n() {
            return true;
        }
        // Symmetry breaking: vertex v may only use a colour already used or
        // the first fresh one.
        let used = colors[..v]
            .iter()
            .copied()
            .filter(|&c| c != usize::MAX)
            .max()
            .map_or(0, |m| m + 1);
        for c in 0..k.min(used + 1) {
            if g.neighbors(v).all(|u| colors[u] != c) {
                colors[v] = c;
                if rec(g, k, v + 1, colors) {
                    return true;
                }
                colors[v] = usize::MAX;
            }
        }
        false
    }
    rec(g, k, 0, &mut colors).then_some(colors)
}

/// Does G contain a Hamiltonian path? Held–Karp bitmask DP, `n ≤ 24`.
pub fn find_hamiltonian_path(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n == 0 {
        return Some(vec![]);
    }
    if n == 1 {
        return Some(vec![0]);
    }
    assert!(n <= 24, "Hamiltonian DP limited to n ≤ 24");
    let full = (1usize << n) - 1;
    // reach[mask][v] = true if there is a path visiting exactly `mask`
    // ending at v. Parent pointers let us reconstruct a witness.
    let mut reach = vec![false; (full + 1) * n];
    let mut parent = vec![usize::MAX; (full + 1) * n];
    for v in 0..n {
        reach[(1 << v) * n + v] = true;
    }
    for mask in 1..=full {
        for v in 0..n {
            if mask & (1 << v) == 0 || !reach[mask * n + v] {
                continue;
            }
            for u in g.neighbors(v) {
                if mask & (1 << u) == 0 {
                    let nm = mask | (1 << u);
                    if !reach[nm * n + u] {
                        reach[nm * n + u] = true;
                        parent[nm * n + u] = v;
                    }
                }
            }
        }
    }
    let end = (0..n).find(|&v| reach[full * n + v])?;
    let mut order = vec![end];
    let mut mask = full;
    let mut v = end;
    while parent[mask * n + v] != usize::MAX {
        let p = parent[mask * n + v];
        mask &= !(1 << v);
        v = p;
        order.push(v);
    }
    order.reverse();
    debug_assert!(is_hamiltonian_path(g, &order));
    Some(order)
}

/// Find a perfect matching, if one exists, via bitmask DP (`n ≤ 22`).
/// Returns `partner[v]` for every vertex.
pub fn find_perfect_matching(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n == 0 {
        return Some(vec![]);
    }
    if n % 2 == 1 {
        return None;
    }
    assert!(n <= 22, "matching DP limited to n ≤ 22");
    let full = (1usize << n) - 1;
    // can[mask]: the vertices in `mask` admit a perfect matching.
    // Pair the lowest set bit with every neighbour in the mask.
    let mut can = vec![None::<bool>; full + 1];
    can[0] = Some(true);
    fn rec(g: &Graph, mask: usize, can: &mut Vec<Option<bool>>) -> bool {
        if let Some(v) = can[mask] {
            return v;
        }
        let lo = mask.trailing_zeros() as usize;
        let mut ok = false;
        for u in g.neighbors(lo) {
            if u != lo && (mask >> u) & 1 == 1 && rec(g, mask & !(1 << lo) & !(1 << u), can) {
                ok = true;
                break;
            }
        }
        can[mask] = Some(ok);
        ok
    }
    if !rec(g, full, &mut can) {
        return None;
    }
    // Reconstruct.
    let mut partner = vec![usize::MAX; n];
    let mut mask = full;
    while mask != 0 {
        let lo = mask.trailing_zeros() as usize;
        let u = g
            .neighbors(lo)
            .find(|&u| (mask >> u) & 1 == 1 && rec(g, mask & !(1 << lo) & !(1 << u), &mut can))
            .expect("matching exists");
        partner[lo] = u;
        partner[u] = lo;
        mask &= !(1 << lo) & !(1 << u);
    }
    Some(partner)
}

/// Is `partner` a perfect matching of G?
pub fn is_perfect_matching(g: &Graph, partner: &[usize]) -> bool {
    let n = g.n();
    partner.len() == n
        && (0..n).all(|v| {
            let p = partner[v];
            p < n && p != v && partner[p] == v && g.has_edge(v, p)
        })
}

/// Does G contain `h` as a (not necessarily induced) subgraph? Brute force
/// over ordered `|V(h)|`-tuples; fine for `|V(h)| ≤ 5` on test graphs.
pub fn contains_subgraph(g: &Graph, h: &Graph) -> bool {
    let k = h.n();
    let n = g.n();
    if k > n {
        return false;
    }
    let mut map = vec![usize::MAX; k];
    let mut used = vec![false; n];
    fn rec(g: &Graph, h: &Graph, i: usize, map: &mut [usize], used: &mut [bool]) -> bool {
        let k = h.n();
        if i == k {
            return true;
        }
        for cand in 0..g.n() {
            if used[cand] {
                continue;
            }
            // Check h-edges from i to already mapped vertices.
            let ok = (0..i).all(|j| !h.has_edge(i, j) || g.has_edge(cand, map[j]));
            if ok {
                map[i] = cand;
                used[cand] = true;
                if rec(g, h, i + 1, map, used) {
                    return true;
                }
                used[cand] = false;
                map[i] = usize::MAX;
            }
        }
        false
    }
    rec(g, h, 0, &mut map, &mut used)
}

/// Number of triangles in G.
pub fn count_triangles(g: &Graph) -> u64 {
    let n = g.n();
    let mut count = 0;
    for u in 0..n {
        for v in (u + 1)..n {
            if !g.has_edge(u, v) {
                continue;
            }
            for w in (v + 1)..n {
                if g.has_edge(u, w) && g.has_edge(v, w) {
                    count += 1;
                }
            }
        }
    }
    count
}

// ---------------------------------------------------------------------
// Distances and connectivity
// ---------------------------------------------------------------------

/// BFS distances (in hops) from `src`; `INF` for unreachable vertices.
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u64> {
    let n = g.n();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        for v in g.neighbors(u) {
            if dist[v] == INF {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Exact APSP via Floyd–Warshall.
pub fn floyd_warshall(g: &WeightedGraph) -> DistMatrix {
    let n = g.n();
    let mut d = DistMatrix::from_rows(n, (0..n).flat_map(|u| g.row(u).to_vec()).collect());
    for k in 0..n {
        for i in 0..n {
            let dik = d.get(i, k);
            if dik >= INF {
                continue;
            }
            for j in 0..n {
                let alt = dist_add(dik, d.get(k, j));
                if alt < d.get(i, j) {
                    d.set(i, j, alt);
                }
            }
        }
    }
    d
}

/// Dijkstra from a single source (binary-heap, non-negative weights).
pub fn dijkstra(g: &WeightedGraph, src: usize) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.n();
    let mut dist = vec![INF; n];
    dist[src] = 0;
    let mut heap = BinaryHeap::from([(Reverse(0u64), src)]);
    while let Some((Reverse(d), u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for v in 0..n {
            if !g.has_edge(u, v) {
                continue;
            }
            let alt = dist_add(d, g.weight(u, v));
            if alt < dist[v] {
                dist[v] = alt;
                heap.push((Reverse(alt), v));
            }
        }
    }
    dist
}

/// Component label of every vertex (labels are the smallest member).
pub fn components(g: &Graph) -> Vec<usize> {
    let n = g.n();
    let mut label = vec![usize::MAX; n];
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        label[s] = s;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = s;
                    stack.push(v);
                }
            }
        }
    }
    label
}

/// Whether G is connected (vacuously true for n ≤ 1).
pub fn is_connected(g: &Graph) -> bool {
    let labels = components(g);
    labels.iter().all(|&l| l == 0) || g.n() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use proptest::prelude::*;

    #[test]
    fn predicates_on_a_square() {
        // 0-1-2-3-0 cycle.
        let g = gen::cycle(4);
        assert!(is_independent_set(&g, &[0, 2]));
        assert!(!is_independent_set(&g, &[0, 1]));
        assert!(is_dominating_set(&g, &[0, 2]));
        assert!(!is_dominating_set(&g, &[0]));
        assert!(is_vertex_cover(&g, &[0, 2]));
        assert!(!is_vertex_cover(&g, &[0, 1]));
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 0, 1, 1]));
    }

    #[test]
    fn combination_enumeration_is_complete() {
        let mut count = 0;
        find_combination(5, 3, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 10);
        // Early exit returns the first match.
        let hit = find_combination(5, 2, |s| s == [1, 3]);
        assert_eq!(hit, Some(vec![1, 3]));
        assert_eq!(find_combination(3, 4, |_| true), None);
        assert_eq!(find_combination(3, 0, |_| true), Some(vec![]));
    }

    #[test]
    fn brute_force_is_ds_on_known_graphs() {
        let star = gen::star(6);
        assert_eq!(find_dominating_set(&star, 1), Some(vec![0]));
        assert!(find_independent_set(&star, 5).is_some());
        assert!(find_independent_set(&star, 6).is_none());
        let k5 = Graph::complete(5);
        assert!(find_independent_set(&k5, 2).is_none());
        assert!(find_clique(&k5, 5).is_some());
        assert!(find_dominating_set(&k5, 1).is_some());
    }

    #[test]
    fn vertex_cover_bounded_search() {
        let g = gen::cycle(5);
        assert!(find_vertex_cover(&g, 2).is_none());
        let c = find_vertex_cover(&g, 3).unwrap();
        assert!(is_vertex_cover(&g, &c));
        assert_eq!(min_vertex_cover_size(&g), 3);
        assert_eq!(max_independent_set_size(&g), 2);
        assert_eq!(min_vertex_cover_size(&Graph::empty(7)), 0);
        assert_eq!(min_vertex_cover_size(&Graph::complete(6)), 5);
    }

    #[test]
    fn maximum_independent_set_witness() {
        let g = gen::cliques(12, 3); // 3 components of K4: α = 3
        let is = find_maximum_independent_set(&g);
        assert_eq!(is.len(), 3);
        assert!(is_independent_set(&g, &is));
        // Decomposition keeps big disconnected instances cheap.
        let big = gen::cliques(120, 30);
        let is = find_maximum_independent_set(&big);
        assert_eq!(is.len(), 30);
        assert_eq!(min_vertex_cover_size(&big), 120 - 30);
        // Agreement with the brute-force size on small connected graphs.
        for seed in 0..4 {
            let g = gen::gnp(10, 0.35, 400 + seed);
            assert_eq!(
                find_maximum_independent_set(&g).len(),
                max_independent_set_size(&g)
            );
        }
    }

    #[test]
    fn coloring_bounds() {
        assert!(
            find_coloring(&gen::cycle(5), 2).is_none(),
            "odd cycle needs 3"
        );
        let c = find_coloring(&gen::cycle(5), 3).unwrap();
        assert!(is_proper_coloring(&gen::cycle(5), &c));
        assert!(find_coloring(&Graph::complete(4), 3).is_none());
        assert!(find_coloring(&Graph::complete(4), 4).is_some());
        assert!(find_coloring(&Graph::empty(4), 1).is_some());
    }

    #[test]
    fn hamiltonian_dp() {
        assert!(find_hamiltonian_path(&gen::path(8)).is_some());
        assert!(find_hamiltonian_path(&gen::star(4)).is_none());
        let (g, _) = gen::hamiltonian(12, 0.05, 3);
        let p = find_hamiltonian_path(&g).unwrap();
        assert!(is_hamiltonian_path(&g, &p));
    }

    #[test]
    fn perfect_matching_dp() {
        // Even cycle: yes. Odd path count: no.
        let m = find_perfect_matching(&gen::cycle(6)).unwrap();
        assert!(is_perfect_matching(&gen::cycle(6), &m));
        assert!(find_perfect_matching(&gen::path(5)).is_none(), "odd n");
        assert!(
            find_perfect_matching(&gen::star(4)).is_none(),
            "star of 4 has none"
        );
        let m = find_perfect_matching(&Graph::complete(8)).unwrap();
        assert!(is_perfect_matching(&Graph::complete(8), &m));
        // A graph with an isolated vertex has none.
        let mut g = gen::path(4);
        g.remove_edge(0, 1);
        assert!(find_perfect_matching(&g).is_none());
    }

    #[test]
    fn subgraph_containment() {
        let tri = gen::cycle(3);
        assert!(contains_subgraph(&Graph::complete(4), &tri));
        assert!(!contains_subgraph(&gen::star(5), &tri));
        // C4 subgraph of K4 (not induced, but containment is subgraph-wise).
        assert!(contains_subgraph(&Graph::complete(4), &gen::cycle(4)));
        assert!(contains_subgraph(&gen::path(5), &gen::path(3)));
        assert!(!contains_subgraph(&gen::path(3), &gen::path(5)));
    }

    #[test]
    fn triangle_count_matches_k4() {
        assert_eq!(count_triangles(&Graph::complete(4)), 4);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
    }

    #[test]
    fn distances_agree_on_unit_weights() {
        let g = gen::gnp(20, 0.2, 11);
        let wg = WeightedGraph::from_graph(&g);
        let fw = floyd_warshall(&wg);
        for src in 0..5 {
            let bfs = bfs_distances(&g, src);
            for v in 0..20 {
                assert_eq!(fw.get(src, v), bfs[v], "src={src} v={v}");
            }
            let dj = dijkstra(&wg, src);
            assert_eq!(dj, bfs);
        }
    }

    #[test]
    fn components_and_connectivity() {
        let g = gen::cliques(6, 2);
        let labels = components(&g);
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1]);
        assert!(!is_connected(&g));
        assert!(is_connected(&gen::path(5)));
        assert!(is_connected(&Graph::empty(1)));
    }

    proptest! {
        #[test]
        fn prop_floyd_warshall_triangle_inequality(seed in any::<u64>()) {
            let g = gen::gnp_weighted(12, 0.4, 20, seed);
            let d = floyd_warshall(&g);
            for i in 0..12 {
                prop_assert_eq!(d.get(i, i), 0);
                for j in 0..12 {
                    prop_assert_eq!(d.get(i, j), d.get(j, i));
                    for k in 0..12 {
                        prop_assert!(d.get(i, j) <= dist_add(d.get(i, k), d.get(k, j)));
                    }
                }
            }
        }

        #[test]
        fn prop_vc_duality(seed in any::<u64>()) {
            let g = gen::gnp(10, 0.35, seed);
            let tau = min_vertex_cover_size(&g);
            let alpha = max_independent_set_size(&g);
            prop_assert_eq!(tau + alpha, 10);
            // The found IS of that size must verify.
            let is = find_independent_set(&g, alpha).unwrap();
            prop_assert!(is_independent_set(&g, &is));
            prop_assert!(find_independent_set(&g, alpha + 1).is_none());
        }

        #[test]
        fn prop_dijkstra_matches_fw(seed in any::<u64>()) {
            let g = gen::gnp_weighted(10, 0.4, 15, seed);
            let fw = floyd_warshall(&g);
            for src in 0..10 {
                let dj = dijkstra(&g, src);
                for v in 0..10 {
                    prop_assert_eq!(dj[v], fw.get(src, v));
                }
            }
        }
    }
}
