//! # cc-graph — graph substrate for the congested clique workbench
//!
//! Graphs, weighted graphs, deterministic workload generators, and the
//! centralised reference solvers that every distributed algorithm in the
//! workspace is validated against.
//!
//! The paper (Korhonen & Suomela, SPAA 2018, §3) studies decision problems
//! on undirected, unweighted graphs whose vertices coincide with the clique
//! nodes; [`Graph::input_row`] and [`Graph::private_input`] implement the
//! paper's two input encodings exactly.

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod gen;
pub mod graph;
pub mod reference;
pub mod weighted;

pub use graph::Graph;
pub use weighted::{dist_add, DistMatrix, WeightedGraph, INF};
