//! Undirected, unweighted graphs on the vertex set `{0, …, n−1}`.
//!
//! Decision problems in the paper (§3) are families of such graphs. The
//! representation is a dense bitset adjacency matrix: the congested clique is
//! interesting precisely on dense inputs, and the simulator feeds each node
//! its adjacency *row*, so rows are the native unit.

use cliquesim::{BitString, NodeId};

/// An undirected simple graph (no self-loops) on `n` labelled vertices.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Graph {
    n: usize,
    rows: Vec<BitString>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={}, edges=[", self.n, self.edge_count())?;
        let mut first = true;
        for (u, v) in self.edges() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
            first = false;
        }
        write!(f, "])")
    }
}

impl Graph {
    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            rows: vec![BitString::zeros(n); n],
        }
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Build from an explicit edge list. Panics on out-of-range endpoints or
    /// self-loops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::empty(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().filter(|b| *b).count())
            .sum::<usize>()
            / 2
    }

    /// Insert the edge `{u, v}`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        assert_ne!(u, v, "self-loops are not allowed");
        self.rows[u].set(v, true);
        self.rows[v].set(u, true);
    }

    /// Remove the edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n);
        self.rows[u].set(v, false);
        self.rows[v].set(u, false);
    }

    /// Whether `{u, v}` is an edge. `has_edge(v, v)` is always false.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.rows[u].get(v)
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.rows[v].iter().filter(|b| *b).count()
    }

    /// Iterate over the neighbours of `v` in increasing order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.rows[v]
            .iter()
            .enumerate()
            .filter(|(_, b)| *b)
            .map(|(u, _)| u)
    }

    /// Iterate over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |v| *v > u)
                .map(move |v| (u, v))
        })
    }

    /// The complement graph.
    pub fn complement(&self) -> Self {
        let mut g = Self::empty(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// The subgraph induced by `verts` (vertices are relabelled
    /// `0..verts.len()` in the order given).
    pub fn induced(&self, verts: &[usize]) -> Self {
        let mut g = Self::empty(verts.len());
        for (i, &u) in verts.iter().enumerate() {
            for (j, &v) in verts.iter().enumerate().skip(i + 1) {
                if self.has_edge(u, v) {
                    g.add_edge(i, j);
                }
            }
        }
        g
    }

    /// The raw adjacency row of `v` (bit `u` set iff `{u,v} ∈ E`).
    pub fn row(&self, v: usize) -> &BitString {
        &self.rows[v]
    }

    // ------------------------------------------------------------------
    // Simulator input encodings (paper §3, "Input encoding").
    // ------------------------------------------------------------------

    /// The standard input for node `v`: a length-`n−1` bit vector indexed by
    /// `V \ {v}` in increasing order, describing v's incident edges.
    pub fn input_row(&self, v: NodeId) -> BitString {
        let v = v.index();
        let mut bits = BitString::with_capacity(self.n - 1);
        for u in 0..self.n {
            if u != v {
                bits.push(self.has_edge(u, v));
            }
        }
        bits
    }

    /// Inputs for all nodes under the standard encoding.
    pub fn input_rows(&self) -> Vec<BitString> {
        (0..self.n)
            .map(|v| self.input_row(NodeId::from(v)))
            .collect()
    }

    /// Which endpoint *owns* the private bit of the potential edge `{u, v}`
    /// under the balanced split of §3 (each bit is held by exactly one
    /// endpoint and every node owns at least `⌊(n−1)/2⌋` bits).
    ///
    /// The rule is the round-robin tournament orientation: `u` owns `{u,v}`
    /// iff `(v − u) mod n ≤ ⌊n/2⌋`, with ties (`n` even, diametrically
    /// opposite pairs) broken towards the smaller endpoint.
    pub fn private_owner(n: usize, u: usize, v: usize) -> usize {
        assert!(u != v && u < n && v < n);
        let d = (v + n - u) % n;
        let half = n / 2;
        if 2 * d < n || (2 * d == n && u < v) {
            u
        } else {
            debug_assert!(
                2 * ((u + n - v) % n) < n || (2 * ((u + n - v) % n) == n && v < u) || half == 0
            );
            v
        }
    }

    /// The potential edges whose private bit node `v` owns, in increasing
    /// order of the other endpoint.
    pub fn owned_slots(n: usize, v: usize) -> Vec<usize> {
        (0..n)
            .filter(|&u| u != v && Self::private_owner(n, v, u) == v)
            .collect()
    }

    /// Private input of node `v` under the balanced split: one bit per owned
    /// potential edge, in [`Graph::owned_slots`] order.
    pub fn private_input(&self, v: NodeId) -> BitString {
        let v = v.index();
        let mut bits = BitString::new();
        for u in Self::owned_slots(self.n, v) {
            bits.push(self.has_edge(v, u));
        }
        bits
    }

    /// Private inputs for all nodes.
    pub fn private_inputs(&self) -> Vec<BitString> {
        (0..self.n)
            .map(|v| self.private_input(NodeId::from(v)))
            .collect()
    }

    /// Enumerate all graphs on `n` vertices (there are `2^(n(n−1)/2)`;
    /// usable for `n ≤ 5` in tests). Order is by edge-mask value.
    pub fn enumerate_all(n: usize) -> impl Iterator<Item = Graph> {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let count: u64 = 1u64
            .checked_shl(pairs.len() as u32)
            .expect("too many graphs to enumerate");
        (0..count).map(move |mask| {
            let mut g = Graph::empty(n);
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if (mask >> i) & 1 == 1 {
                    g.add_edge(u, v);
                }
            }
            g
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_and_complete_counts() {
        assert_eq!(Graph::empty(5).edge_count(), 0);
        assert_eq!(Graph::complete(5).edge_count(), 10);
        assert_eq!(Graph::complete(1).edge_count(), 0);
    }

    #[test]
    fn add_remove_has() {
        let mut g = Graph::empty(4);
        g.add_edge(0, 3);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 2));
        assert!(!g.has_edge(2, 2));
        g.remove_edge(3, 0);
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        Graph::empty(3).add_edge(1, 1);
    }

    #[test]
    fn neighbors_and_degree() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 3), (0, 4), (2, 3)]);
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 3, 4]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(2), 1);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            vec![(0, 1), (0, 3), (0, 4), (2, 3)]
        );
    }

    #[test]
    fn complement_involution() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 3)]);
        assert_eq!(g.complement().complement(), g);
        assert_eq!(g.complement().edge_count(), 6 - 3);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = Graph::from_edges(5, &[(0, 2), (2, 4), (1, 3)]);
        let h = g.induced(&[0, 2, 4]);
        assert_eq!(h.n(), 3);
        assert!(h.has_edge(0, 1)); // 0-2 in g
        assert!(h.has_edge(1, 2)); // 2-4 in g
        assert!(!h.has_edge(0, 2));
    }

    #[test]
    fn input_row_skips_self() {
        let g = Graph::from_edges(4, &[(1, 0), (1, 3)]);
        let row = g.input_row(NodeId(1));
        assert_eq!(row.len(), 3);
        // Indexed by {0, 2, 3}.
        assert!(row.get(0));
        assert!(!row.get(1));
        assert!(row.get(2));
    }

    #[test]
    fn private_split_partitions_all_pairs() {
        for n in 2..=9 {
            for u in 0..n {
                for v in (u + 1)..n {
                    let o = Graph::private_owner(n, u, v);
                    let o2 = Graph::private_owner(n, v, u);
                    assert_eq!(o, o2, "ownership must be symmetric in argument order");
                    assert!(o == u || o == v);
                }
            }
        }
    }

    #[test]
    fn private_split_is_balanced() {
        for n in 2..=33 {
            for v in 0..n {
                let owned = Graph::owned_slots(n, v).len();
                assert!(
                    owned >= (n - 1) / 2,
                    "node {v} of {n} owns {owned} < floor((n-1)/2) bits"
                );
                assert!(owned <= n / 2 + 1);
            }
            let total: usize = (0..n).map(|v| Graph::owned_slots(n, v).len()).sum();
            assert_eq!(
                total,
                n * (n - 1) / 2,
                "every pair owned exactly once (n={n})"
            );
        }
    }

    #[test]
    fn enumerate_all_counts() {
        assert_eq!(Graph::enumerate_all(3).count(), 8);
        assert_eq!(Graph::enumerate_all(4).count(), 64);
        let with_all_edges = Graph::enumerate_all(3)
            .filter(|g| g.edge_count() == 3)
            .count();
        assert_eq!(with_all_edges, 1);
    }

    proptest! {
        #[test]
        fn prop_from_edges_roundtrip(n in 2usize..12, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u+1)..n {
                    if rng.gen_bool(0.4) {
                        edges.push((u, v));
                    }
                }
            }
            let g = Graph::from_edges(n, &edges);
            prop_assert_eq!(g.edge_count(), edges.len());
            prop_assert_eq!(g.edges().collect::<Vec<_>>(), edges);
        }

        #[test]
        fn prop_private_inputs_reconstruct_graph(n in 2usize..10, seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut g = Graph::empty(n);
            for u in 0..n {
                for v in (u+1)..n {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                    }
                }
            }
            // Reassemble the graph from the private bits alone.
            let inputs = g.private_inputs();
            let mut h = Graph::empty(n);
            for v in 0..n {
                for (i, u) in Graph::owned_slots(n, v).into_iter().enumerate() {
                    if inputs[v].get(i) {
                        h.add_edge(v, u);
                    }
                }
            }
            prop_assert_eq!(g, h);
        }
    }
}
