//! Testkit conformance: shortest-path outputs are re-judged against
//! Floyd–Warshall / Dijkstra / reference BFS, differentially across
//! engine pool shapes, with every failure naming the reproducing seed.

use cc_graph::WeightedGraph;
use cc_paths::{apsp_exact, apsp_unweighted, bellman_ford, bfs, transitive_closure};
use cc_testkit::{
    corpus, differential_broadcast_only, differential_session, oracle, weighted_corpus,
};

#[test]
fn apsp_exact_conforms_across_weighted_corpus() {
    for inst in weighted_corpus(&[9, 16], &[1]) {
        let wg = inst.graph();
        let got = differential_session(&inst.label(), wg.n(), |s| apsp_exact(s, &wg).unwrap());
        oracle::judge_apsp(&inst.label(), &wg, &got);
    }
}

#[test]
fn apsp_unweighted_agrees_with_unit_weights() {
    for inst in corpus(&[9, 14], &[3]) {
        let g = inst.graph();
        let got = differential_session(&inst.label(), g.n(), |s| apsp_unweighted(s, &g).unwrap());
        oracle::judge_apsp(&inst.label(), &WeightedGraph::from_graph(&g), &got);
    }
}

#[test]
fn bfs_conforms_and_is_broadcast_only() {
    // BFS flooding only broadcasts, so it must run identically in the
    // broadcast-restricted model (paper §2) and the full clique.
    for inst in corpus(&[9, 15], &[1, 4]) {
        let g = inst.graph();
        let got = differential_broadcast_only(&inst.label(), g.n(), |s| bfs(s, &g, 0).unwrap());
        oracle::judge_bfs(&inst.label(), &g, 0, &got);
    }
}

#[test]
fn bellman_ford_matches_dijkstra() {
    for inst in weighted_corpus(&[9, 12], &[2]) {
        let wg = inst.graph();
        let got = differential_session(&inst.label(), wg.n(), |s| bellman_ford(s, &wg, 0).unwrap());
        oracle::judge_sssp(&inst.label(), &wg, 0, &got);
    }
}

#[test]
fn transitive_closure_matches_component_structure() {
    for inst in corpus(&[9, 12], &[5]) {
        let g = inst.graph();
        let got =
            differential_session(&inst.label(), g.n(), |s| transitive_closure(s, &g).unwrap());
        oracle::judge_reachability(&inst.label(), &g, &got);
    }
}
