//! All-pairs shortest paths via distance-product squaring.
//!
//! The upper bounds in Figure 1 route APSP through matrix multiplication:
//! squaring the weight matrix over the `(min,+)` semiring `⌈log₂ n⌉` times
//! yields all distances, so `δ(APSP) ≤ δ((min,+) MM) ≤ 1/3` with the 3D
//! semiring algorithm, for an `O(n^{1/3} log n)`-round protocol.

use cc_graph::{DistMatrix, Graph, WeightedGraph, INF};
use cc_matmul::{mm_with_strategy, MatmulError, MmStrategy, Semiring, TropicalSemiring};
use cliquesim::Session;

/// One squaring step behind the strategy selector; `Auto` re-gossips the
/// density each squaring, so late (denser) iterates can fall back to the
/// dense 3D schedule even when the input matrix was sparse.
fn square<S: Semiring>(
    session: &mut Session,
    sr: &S,
    rows: &[Vec<S::Elem>],
    strategy: MmStrategy,
) -> Result<Vec<Vec<S::Elem>>, MatmulError> {
    Ok(mm_with_strategy(session, sr, strategy, rows, rows)?.rows)
}

/// Exact weighted undirected APSP.
///
/// Node `v` holds row `v` of the weight matrix; afterwards it holds row `v`
/// of the distance matrix (assembled here into a [`DistMatrix`] for the
/// caller). Costs `O(n^{1/3} log n)` rounds.
pub fn apsp_exact(session: &mut Session, g: &WeightedGraph) -> Result<DistMatrix, MatmulError> {
    apsp_exact_with(session, g, MmStrategy::Dense3D)
}

/// [`apsp_exact`] with an explicit multiplication strategy for the
/// distance-product squarings. Distances are identical for every strategy;
/// only the round cost differs.
pub fn apsp_exact_with(
    session: &mut Session,
    g: &WeightedGraph,
    strategy: MmStrategy,
) -> Result<DistMatrix, MatmulError> {
    let n = session.n();
    assert_eq!(g.n(), n, "graph size must match the clique size");
    // Distances are bounded by (n−1) · max weight.
    let max_dist = (n.max(2) as u64 - 1).saturating_mul(g.max_weight().max(1));
    let sr = TropicalSemiring::for_max_value(max_dist);

    let mut rows: Vec<Vec<u64>> = (0..n).map(|v| g.row(v).to_vec()).collect();
    // After s squarings, rows hold exact distances for paths of ≤ 2^s hops,
    // so ⌈log₂(n−1)⌉ squarings suffice.
    let mut hops = 1usize;
    while hops < n.saturating_sub(1).max(1) {
        rows = square(session, &sr, &rows, strategy)?;
        hops *= 2;
    }
    Ok(DistMatrix::from_rows(
        n,
        rows.into_iter().flatten().collect(),
    ))
}

/// Exact unweighted undirected APSP (hop distances).
pub fn apsp_unweighted(session: &mut Session, g: &Graph) -> Result<DistMatrix, MatmulError> {
    apsp_exact(session, &WeightedGraph::from_graph(g))
}

/// [`apsp_unweighted`] with an explicit multiplication strategy.
pub fn apsp_unweighted_with(
    session: &mut Session,
    g: &Graph,
    strategy: MmStrategy,
) -> Result<DistMatrix, MatmulError> {
    apsp_exact_with(session, &WeightedGraph::from_graph(g), strategy)
}

/// `(1+ε)`-approximate weighted APSP by scale-wise rounding (Zwick-style).
///
/// For each weight scale `s = 2^0, 2^1, …` up to `n·W`, weights are rounded
/// up to multiples of `ε·s/n` and capped, giving a cheap exact APSP per
/// scale whose entries fit in `O(log(n/ε))` bits; a path of true length
/// `≈ s` picks up at most `n · ε·s/n = ε·s` additive error at scale `s`.
/// The final estimate is the minimum over scales.
///
/// The paper relates `(1+ε)`-APSP to *ring* MM (Figure 1); running the
/// scales over the `(min,+)` semiring keeps every reduction arrow intact at
/// semiring exponent (see DESIGN.md substitutions).
pub fn apsp_approx(
    session: &mut Session,
    g: &WeightedGraph,
    eps: f64,
) -> Result<DistMatrix, MatmulError> {
    apsp_approx_with(session, g, eps, MmStrategy::Dense3D)
}

/// [`apsp_approx`] with an explicit multiplication strategy for the
/// per-scale squarings.
pub fn apsp_approx_with(
    session: &mut Session,
    g: &WeightedGraph,
    eps: f64,
    strategy: MmStrategy,
) -> Result<DistMatrix, MatmulError> {
    assert!(eps > 0.0, "ε must be positive");
    let n = session.n();
    assert_eq!(g.n(), n);
    let w_max = g.max_weight();
    if w_max == 0 {
        // No edges (or all zero weights): exact APSP is trivial anyway.
        return apsp_exact_with(session, g, strategy);
    }

    // Per-scale capped instance: entries in units of μ = max(1, ⌊ε·s/(2n)⌋),
    // capped at cap = ⌈2s/μ⌉+1 (paths longer than 2s are served by a larger
    // scale; edges on a ≤2s path are never capped). Rounding is upward, so
    // every scale overestimates; the scale with s/2 < d ≤ s adds at most
    // (n−1)·μ ≤ ε·s/2 ≤ ε·d, giving the (1+ε) guarantee.
    let mut best = DistMatrix::infinite(n);
    for v in 0..n {
        for u in 0..n {
            if v == u {
                best.set(v, u, 0);
            }
        }
    }
    let max_dist = (n as u64 - 1).saturating_mul(w_max);
    let mut s = 1u64;
    loop {
        let mu = ((eps * s as f64) / (2.0 * n as f64)).floor().max(1.0) as u64;
        let cap = (2 * s).div_ceil(mu) + 1;
        let mut rows: Vec<Vec<u64>> = Vec::with_capacity(n);
        for v in 0..n {
            rows.push(
                g.row(v)
                    .iter()
                    .map(|&w| {
                        if w >= INF {
                            INF
                        } else {
                            let r = w.div_ceil(mu);
                            if r > cap {
                                INF
                            } else {
                                r
                            }
                        }
                    })
                    .collect(),
            );
        }
        let sr = TropicalSemiring::for_max_value(cap.saturating_mul(n as u64));
        let mut hops = 1usize;
        while hops < n.saturating_sub(1).max(1) {
            rows = square(session, &sr, &rows, strategy)?;
            hops *= 2;
        }
        for v in 0..n {
            for u in 0..n {
                let d = rows[v][u];
                if d < INF {
                    // Upward rounding makes every scale an overestimate, so
                    // taking the minimum over scales is always sound.
                    let est = d.saturating_mul(mu);
                    if est < best.get(v, u) {
                        best.set(v, u, est);
                    }
                }
            }
        }
        if s >= max_dist {
            break;
        }
        s = s.saturating_mul(2);
    }
    Ok(best)
}

/// Exact **directed** weighted APSP (Figure 1's "APSP w/d" node): node
/// `v` holds `rows[v]`, the out-weights of its arcs (`INF` when absent,
/// 0 on the diagonal). Distance-product squaring is oblivious to
/// symmetry, so the cost is the same `O(n^{1/3} log n)` rounds.
///
/// (Le Gall \[42\] improves the *unweighted* directed case to `O(n^{0.2096})`
/// via fast rectangular matrix multiplication — out of scope per
/// DESIGN.md; the arrows of Figure 1 are unaffected.)
pub fn apsp_directed(
    session: &mut Session,
    rows: &[Vec<u64>],
) -> Result<Vec<Vec<u64>>, MatmulError> {
    apsp_directed_with(session, rows, MmStrategy::Dense3D)
}

/// [`apsp_directed`] with an explicit multiplication strategy.
pub fn apsp_directed_with(
    session: &mut Session,
    rows: &[Vec<u64>],
    strategy: MmStrategy,
) -> Result<Vec<Vec<u64>>, MatmulError> {
    let n = session.n();
    assert_eq!(rows.len(), n);
    let max_w = rows
        .iter()
        .flat_map(|r| r.iter())
        .copied()
        .filter(|&w| w < INF)
        .max()
        .unwrap_or(0);
    let max_dist = (n.max(2) as u64 - 1).saturating_mul(max_w.max(1));
    let sr = TropicalSemiring::for_max_value(max_dist);
    let mut cur: Vec<Vec<u64>> = rows.to_vec();
    let mut hops = 1usize;
    while hops < n.saturating_sub(1).max(1) {
        cur = square(session, &sr, &cur, strategy)?;
        hops *= 2;
    }
    Ok(cur)
}

/// The diameter of `g` in hops: `None` when disconnected. Runs unweighted
/// APSP and takes the maximum — every node can compute it from its
/// distance row plus one max-aggregation broadcast (driver-side here).
pub fn diameter(session: &mut Session, g: &Graph) -> Result<Option<u64>, MatmulError> {
    let d = apsp_unweighted(session, g)?;
    let n = g.n();
    let mut worst = 0u64;
    for u in 0..n {
        for v in 0..n {
            let x = d.get(u, v);
            if x >= INF {
                return Ok(None);
            }
            worst = worst.max(x);
        }
    }
    Ok(Some(worst))
}

/// Transitive closure (reachability) via Boolean squaring of `A ∨ I`:
/// `O(n^{1/3} log n)` rounds.
pub fn transitive_closure(session: &mut Session, g: &Graph) -> Result<Vec<Vec<bool>>, MatmulError> {
    transitive_closure_with(session, g, MmStrategy::Dense3D)
}

/// [`transitive_closure`] with an explicit multiplication strategy.
pub fn transitive_closure_with(
    session: &mut Session,
    g: &Graph,
    strategy: MmStrategy,
) -> Result<Vec<Vec<bool>>, MatmulError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    let sr = cc_matmul::BoolSemiring;
    let mut rows: Vec<Vec<bool>> = (0..n)
        .map(|v| (0..n).map(|u| u == v || g.has_edge(u, v)).collect())
        .collect();
    let mut hops = 1usize;
    while hops < n.saturating_sub(1).max(1) {
        rows = square(session, &sr, &rows, strategy)?;
        hops *= 2;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    #[test]
    fn apsp_matches_floyd_warshall() {
        for seed in 0..3 {
            let n = 12;
            let g = gen::gnp_weighted(n, 0.35, 20, seed);
            let expect = reference::floyd_warshall(&g);
            let mut s = session(n);
            let got = apsp_exact(&mut s, &g).unwrap();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn apsp_unweighted_matches_bfs() {
        let n = 14;
        let g = gen::gnp(n, 0.25, 5);
        let mut s = session(n);
        let got = apsp_unweighted(&mut s, &g).unwrap();
        for src in 0..n {
            let bfs = reference::bfs_distances(&g, src);
            for v in 0..n {
                assert_eq!(got.get(src, v), bfs[v], "src={src} v={v}");
            }
        }
    }

    #[test]
    fn apsp_handles_disconnected_graphs() {
        let g = WeightedGraph::from_graph(&gen::cliques(8, 2));
        let mut s = session(8);
        let got = apsp_exact(&mut s, &g).unwrap();
        assert_eq!(got.get(0, 2), 1);
        assert_eq!(got.get(0, 1), INF);
    }

    #[test]
    fn approx_apsp_within_eps() {
        for seed in 0..3 {
            let n = 10;
            let g = gen::gnp_weighted(n, 0.4, 50, seed);
            let exact = reference::floyd_warshall(&g);
            let mut s = session(n);
            let got = apsp_approx(&mut s, &g, 0.25).unwrap();
            let err = got.max_relative_error(&exact);
            assert!(err <= 0.25 + 1e-9, "seed {seed}: error {err}");
            // Approximation never underestimates (rounding is upward).
            for i in 0..n {
                for j in 0..n {
                    assert!(got.get(i, j) >= exact.get(i, j), "({i},{j})");
                }
            }
        }
    }

    #[test]
    fn directed_apsp_matches_directed_floyd_warshall() {
        use rand::{Rng, SeedableRng};
        let n = 12;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        // Asymmetric weights; about half the arcs absent.
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|v| {
                (0..n)
                    .map(|u| {
                        if u == v {
                            0
                        } else if rng.gen_bool(0.4) {
                            rng.gen_range(1..30)
                        } else {
                            INF
                        }
                    })
                    .collect()
            })
            .collect();
        // Reference: directed Floyd–Warshall.
        let mut expect = rows.clone();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let alt = cc_graph::dist_add(expect[i][k], expect[k][j]);
                    if alt < expect[i][j] {
                        expect[i][j] = alt;
                    }
                }
            }
        }
        let mut s = session(n);
        let got = apsp_directed(&mut s, &rows).unwrap();
        assert_eq!(got, expect);
        // Directedness matters: check at least one asymmetric pair exists.
        assert!(
            (0..n).any(|i| (0..n).any(|j| expect[i][j] != expect[j][i])),
            "test instance should be genuinely directed"
        );
    }

    #[test]
    fn diameter_of_known_graphs() {
        let mut s = session(9);
        assert_eq!(diameter(&mut s, &gen::path(9)).unwrap(), Some(8));
        let mut s = session(8);
        assert_eq!(diameter(&mut s, &Graph::complete(8)).unwrap(), Some(1));
        let mut s = session(8);
        assert_eq!(diameter(&mut s, &gen::cliques(8, 2)).unwrap(), None);
    }

    #[test]
    fn transitive_closure_matches_components() {
        let g = gen::cliques(9, 3);
        let mut s = session(9);
        let tc = transitive_closure(&mut s, &g).unwrap();
        let comp = reference::components(&g);
        for u in 0..9 {
            for v in 0..9 {
                assert_eq!(tc[u][v], comp[u] == comp[v], "({u},{v})");
            }
        }
    }

    #[test]
    fn strategy_variants_compute_identical_distances() {
        // The same distances must come out of every strategy — the sparse
        // path's reordered, zero-skipping sums are value-identical.
        let n = 16;
        let g = gen::gnp_weighted(n, 0.15, 9, 3);
        let mut s = session(n);
        let dense = apsp_exact_with(&mut s, &g, MmStrategy::Dense3D).unwrap();
        for strategy in [MmStrategy::Auto, MmStrategy::Sparse] {
            let mut s = session(n);
            let got = apsp_exact_with(&mut s, &g, strategy).unwrap();
            assert_eq!(got, dense, "{strategy:?}");
        }
        let ug = gen::gnp(n, 0.15, 3);
        let mut s = session(n);
        let tc = transitive_closure_with(&mut s, &ug, MmStrategy::Auto).unwrap();
        let mut s = session(n);
        assert_eq!(tc, transitive_closure(&mut s, &ug).unwrap());
    }

    #[test]
    fn apsp_rounds_scale_sublinearly() {
        // Sanity: APSP on 27 nodes should cost far fewer than the ~n·log W
        // rounds a naive row-broadcast APSP would need.
        let n = 27;
        let g = gen::gnp_weighted(n, 0.3, 10, 1);
        let mut s = session(n);
        apsp_exact(&mut s, &g).unwrap();
        assert!(s.stats().rounds < 2000, "rounds = {}", s.stats().rounds);
    }
}
