//! Single-source shortest paths.
//!
//! Figure 1 places SSSP variants below their APSP counterparts (trivially,
//! an APSP algorithm answers SSSP). Direct algorithms are nevertheless
//! interesting baselines:
//!
//! * [`bfs`] — unweighted SSSP by frontier flooding. On a clique every
//!   announcement is a broadcast, so the algorithm runs in
//!   `eccentricity(src) + 2` rounds with 1-bit messages.
//! * [`bellman_ford`] — weighted SSSP by iterated distance broadcast;
//!   `O(hop-radius)` iterations of an `O(1)`-round broadcast phase.

use cc_graph::{dist_add, Graph, WeightedGraph, INF};
use cc_routing::{all_to_all_broadcast, RouteError};
use cliquesim::{
    BitString, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Session, SimError, Status,
};

/// Node program for distributed BFS.
///
/// Round r: every node whose distance was fixed to `r − 1` in the previous
/// round broadcasts a single bit. A node adopts distance `r` when it first
/// hears an announcement from one of its *neighbours*. A node halts after
/// its first locally silent round; at that point either its distance is
/// already fixed, or the global frontier has died out and it is
/// unreachable, so early halting is always sound. The run finishes within
/// `ecc(src) + 2` rounds.
struct BfsNode {
    src: usize,
    /// This node's adjacency row (its input).
    row: BitString,
    dist: u64,
    parent: Option<u32>,
    announce_round: Option<usize>,
}

impl NodeProgram for BfsNode {
    /// `(distance, BFS parent)`; the parent is the smallest-id neighbour
    /// that announced one round earlier (`None` for the source and for
    /// unreachable nodes).
    type Output = (u64, Option<u32>);

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<(u64, Option<u32>)> {
        let me = ctx.id.index();
        if round == 0 {
            if me == self.src {
                self.dist = 0;
                self.announce_round = Some(0);
            }
        } else {
            let mut heard_any = false;
            let mut heard_neighbor: Option<u32> = None;
            for (u, _) in inbox.iter() {
                heard_any = true;
                // Adjacency row is indexed by V \ {me}.
                let ui = u.index();
                let slot = if ui < me { ui } else { ui - 1 };
                if self.row.get(slot) && heard_neighbor.is_none() {
                    heard_neighbor = Some(u.0);
                }
            }
            if let Some(p) = heard_neighbor {
                if self.dist == INF {
                    self.dist = round as u64; // announcer had dist = round − 1
                    self.parent = Some(p);
                    self.announce_round = Some(round);
                }
            }
            if !heard_any {
                // A fully silent round: the frontier died out everywhere.
                return Status::Halt((self.dist, self.parent));
            }
        }
        if self.announce_round == Some(round) {
            let mut one = BitString::new();
            one.push(true);
            outbox.broadcast(&one);
        }
        Status::Continue
    }
}

/// Distributed BFS from `src`; returns hop distances (`INF` when
/// unreachable). Runs in `ecc(src) + 2` rounds.
pub fn bfs(session: &mut Session, g: &Graph, src: usize) -> Result<Vec<u64>, SimError> {
    Ok(bfs_tree(session, g, src)?
        .into_iter()
        .map(|(d, _)| d)
        .collect())
}

/// Distributed BFS returning `(distance, parent)` per node — the
/// "BFS tree" entry of Figure 1. Parents form a tree rooted at `src`
/// spanning its component.
pub fn bfs_tree(
    session: &mut Session,
    g: &Graph,
    src: usize,
) -> Result<Vec<(u64, Option<u32>)>, SimError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    assert!(src < n);
    let programs: Vec<BfsNode> = (0..n)
        .map(|v| BfsNode {
            src,
            row: g.input_row(NodeId::from(v)),
            dist: INF,
            parent: None,
            announce_round: None,
        })
        .collect();
    let out = session.run(programs)?;
    Ok(out.outputs)
}

/// Distributed Bellman–Ford from `src`.
///
/// Each iteration, every node broadcasts its tentative distance (an
/// `O(log n + log W)`-bit value shipped by the router) and relaxes against
/// its incident edges; iteration stops after a round in which no node
/// improved (each node's "changed" flag travels with its distance, so the
/// stability of the whole network is common knowledge).
pub fn bellman_ford(
    session: &mut Session,
    g: &WeightedGraph,
    src: usize,
) -> Result<Vec<u64>, RouteError> {
    let n = session.n();
    assert_eq!(g.n(), n);
    assert!(src < n);
    let width = 64; // distance payloads are framed and chunked by the router
    let mut dist: Vec<u64> = (0..n).map(|v| if v == src { 0 } else { INF }).collect();
    loop {
        let payloads: Vec<BitString> = dist
            .iter()
            .map(|&d| {
                let mut b = BitString::new();
                b.push_uint(d, width);
                b
            })
            .collect();
        let views = all_to_all_broadcast(session, payloads)?;
        let mut changed = false;
        let mut next = dist.clone();
        for v in 0..n {
            for (u, bits) in views[v].iter().enumerate() {
                if u == v || !g.has_edge(u, v) {
                    continue;
                }
                let du = bits
                    .reader()
                    .read_uint(width)
                    .expect("well-formed distance");
                let alt = dist_add(du, g.weight(u, v));
                if alt < next[v] {
                    next[v] = alt;
                    changed = true;
                }
            }
        }
        dist = next;
        if !changed {
            return Ok(dist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{gen, reference};
    use cliquesim::Engine;

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    #[test]
    fn bfs_matches_reference() {
        for seed in 0..4 {
            let n = 18;
            let g = gen::gnp(n, 0.18, seed);
            let expect = reference::bfs_distances(&g, 3);
            let mut s = session(n);
            let got = bfs(&mut s, &g, 3).unwrap();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn bfs_round_count_tracks_eccentricity() {
        let n = 12;
        let g = gen::path(n);
        let mut s = session(n);
        let got = bfs(&mut s, &g, 0).unwrap();
        assert_eq!(got[n - 1], (n - 1) as u64);
        // ecc(0) = n−1; nodes halt after their first locally silent round,
        // which lands 1–2 rounds past the eccentricity.
        let ecc = n - 1;
        assert!(
            (ecc + 1..=ecc + 2).contains(&s.stats().rounds),
            "rounds = {}",
            s.stats().rounds
        );
    }

    #[test]
    fn bfs_on_disconnected_graph() {
        let g = gen::cliques(8, 2);
        let mut s = session(8);
        let got = bfs(&mut s, &g, 0).unwrap();
        for v in 0..8 {
            if v % 2 == 0 {
                assert_eq!(got[v], u64::from(v != 0));
            } else {
                assert_eq!(got[v], INF);
            }
        }
    }

    #[test]
    fn bfs_tree_parents_are_consistent() {
        for seed in 0..3 {
            let n = 16;
            let g = gen::gnp(n, 0.2, 70 + seed);
            let mut s = session(n);
            let tree = bfs_tree(&mut s, &g, 2).unwrap();
            let dist = reference::bfs_distances(&g, 2);
            for (v, (d, p)) in tree.iter().enumerate() {
                assert_eq!(*d, dist[v], "seed {seed} v={v}");
                match p {
                    Some(p) => {
                        let p = *p as usize;
                        assert!(g.has_edge(v, p), "parent must be a neighbour");
                        assert_eq!(dist[p] + 1, dist[v], "parent one level up");
                    }
                    None => assert!(v == 2 || dist[v] == INF),
                }
            }
        }
    }

    #[test]
    fn bellman_ford_matches_dijkstra() {
        for seed in 0..4 {
            let n = 12;
            let g = gen::gnp_weighted(n, 0.3, 25, seed);
            let expect = reference::dijkstra(&g, 1);
            let mut s = session(n);
            let got = bellman_ford(&mut s, &g, 1).unwrap();
            assert_eq!(got, expect, "seed {seed}");
        }
    }

    #[test]
    fn bellman_ford_isolated_source() {
        let g = WeightedGraph::empty(5);
        let mut s = session(5);
        let got = bellman_ford(&mut s, &g, 2).unwrap();
        assert_eq!(got, vec![INF, INF, 0, INF, INF]);
    }
}
