//! # cc-paths — shortest paths on the congested clique
//!
//! Implements the shortest-path problems of Figure 1 in Korhonen & Suomela
//! (SPAA 2018):
//!
//! * exact weighted/unweighted APSP via `(min,+)` matrix squaring
//!   (`O(n^{1/3} log n)` rounds on top of `cc-matmul`'s 3D algorithm);
//! * `(1+ε)`-approximate APSP via scale-wise weight rounding;
//! * transitive closure via Boolean squaring;
//! * direct SSSP algorithms (BFS flooding, distributed Bellman–Ford) as
//!   baselines for the trivial `δ(SSSP) ≤ δ(APSP)` arrows.

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod sssp;

pub use apsp::{
    apsp_approx, apsp_approx_with, apsp_directed, apsp_directed_with, apsp_exact, apsp_exact_with,
    apsp_unweighted, apsp_unweighted_with, diameter, transitive_closure, transitive_closure_with,
};
pub use sssp::{bellman_ford, bfs, bfs_tree};
