//! Testkit conformance for the routing substrate: frame codec fuzzing
//! (including empty demand patterns and max-size payloads) and
//! differential execution of the all-to-all broadcast across pool shapes.

use cc_routing::{frame, frame_all, parse_frames, rounds_for, route, LEN_HEADER_BITS};
use cc_testkit::instances::strategies::arb_bitstring;
use cc_testkit::{differential_session, POOL_SHAPES};
use cliquesim::{BitString, NodeId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn all_to_all_broadcast_is_pool_shape_independent() {
    let n = 15;
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let payloads: Vec<BitString> = (0..n)
        .map(|v| (0..(v * 13) % 47).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let views = differential_session("all-to-all[n=15, seed=42]", n, |s| {
        cc_routing::all_to_all_broadcast(s, payloads.clone()).unwrap()
    });
    // Oracle: every node sees every payload verbatim.
    for (v, view) in views.iter().enumerate() {
        assert_eq!(view.len(), n, "node {v} view size");
        for (u, p) in view.iter().enumerate() {
            assert_eq!(p, &payloads[u], "node {v} corrupted payload from {u}");
        }
    }
}

#[test]
fn empty_demand_patterns_cost_zero_rounds() {
    // An all-empty demand matrix is a legal input and must not spin.
    for &threads in POOL_SHAPES.iter() {
        let n = 9;
        let mut s = cliquesim::Session::new(cliquesim::Engine::new(n).with_threads_exact(threads));
        let demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
        let delivered = route(&mut s, demands).unwrap();
        assert_eq!(s.stats().rounds, 0, "threads={threads}");
        assert!(delivered.iter().all(|d| d.is_empty()), "threads={threads}");
    }
}

#[test]
fn max_size_payload_roundtrips_through_the_codec() {
    // A single payload at the largest size the tests exercise end-to-end
    // (64 KiB of bits) survives framing, and the declared round cost
    // matches the framed stream length exactly.
    let bits = 1 << 16;
    let payload: BitString = (0..bits).map(|i| i % 5 == 0 || i % 3 == 1).collect();
    let framed = frame(&payload);
    assert_eq!(framed.len(), bits + LEN_HEADER_BITS);
    let back = parse_frames(&framed).unwrap();
    assert_eq!(back, vec![payload]);
    assert_eq!(rounds_for(framed.len(), 4), framed.len().div_ceil(4));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frame_codec_roundtrips_arbitrary_payload_batches(
        count in 0usize..6,
        seed in 0u64..1_000,
    ) {
        // Payload lengths cover empty, word-straddling, and multi-word.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let payloads: Vec<BitString> = (0..count)
            .map(|_| {
                let len = [0, 1, 63, 64, 65, 127, 200][rng.gen_range(0..7usize)];
                (0..len).map(|_| rng.gen_bool(0.5)).collect()
            })
            .collect();
        let stream = frame_all(payloads.iter());
        let back = parse_frames(&stream).unwrap_or_else(|e| {
            panic!("seed={seed}: codec rejected its own framing: {e:?}")
        });
        prop_assert_eq!(back, payloads, "seed={}", seed);
    }

    #[test]
    fn frame_codec_roundtrips_strategy_bitstrings(
        seed in 0u64..1_000,
    ) {
        // The shared testkit strategy drives single-frame round-trips.
        let mut rng = proptest::test_runner::TestRng::deterministic(&format!("frames-{seed}"));
        let payload = arb_bitstring(300).sample(&mut rng);
        let framed = frame(&payload);
        let back = parse_frames(&framed).unwrap();
        prop_assert_eq!(back.len(), 1, "seed={}", seed);
        prop_assert_eq!(back.into_iter().next().unwrap(), payload, "seed={}", seed);
    }

    #[test]
    fn truncated_streams_never_panic(
        len in 0usize..120,
        cut in 0usize..120,
    ) {
        let payload: BitString = (0..len).map(|i| i % 2 == 0).collect();
        let framed = frame(&payload);
        let cut = cut.min(framed.len());
        let truncated = framed.reader().read_bits(cut).unwrap();
        // Must decode or reject — never panic.
        let _ = parse_frames(&truncated);
    }
}
