//! Length-framed bit streams.
//!
//! When a node must ship a payload larger than one message, the payload is
//! cut into bandwidth-sized chunks sent over consecutive rounds on the same
//! link. Concatenating received chunks reproduces the sender's bit stream
//! exactly (messages carry their bit length), so a simple 32-bit length
//! header per payload suffices for reassembly — no padding, no sentinels.

use cliquesim::{BitString, DecodeError};

/// Width of the per-payload length header in bits.
pub const LEN_HEADER_BITS: usize = 32;

/// Frame one payload: `len:32 || payload`.
pub fn frame(payload: &BitString) -> BitString {
    let mut out = BitString::with_capacity(LEN_HEADER_BITS + payload.len());
    out.push_uint(payload.len() as u64, LEN_HEADER_BITS);
    out.extend_from(payload);
    out
}

/// Frame a sequence of payloads into one stream.
pub fn frame_all<'a>(payloads: impl IntoIterator<Item = &'a BitString>) -> BitString {
    let mut out = BitString::new();
    for p in payloads {
        out.push_uint(p.len() as u64, LEN_HEADER_BITS);
        out.extend_from(p);
    }
    out
}

/// Parse a stream of frames back into payloads. Rejects malformed streams
/// (truncated header or payload).
pub fn parse_frames(stream: &BitString) -> Result<Vec<BitString>, DecodeError> {
    let mut r = stream.reader();
    let mut out = Vec::new();
    while r.remaining() > 0 {
        let len = r.read_uint(LEN_HEADER_BITS)? as usize;
        out.push(r.read_bits(len)?);
    }
    Ok(out)
}

/// Rounds needed to ship `stream_bits` over one link at `bandwidth` bits per
/// round.
pub fn rounds_for(stream_bits: usize, bandwidth: usize) -> usize {
    stream_bits.div_ceil(bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_roundtrip() {
        let p = BitString::from_bits([true, false, true, true]);
        let f = frame(&p);
        assert_eq!(f.len(), LEN_HEADER_BITS + 4);
        assert_eq!(parse_frames(&f).unwrap(), vec![p]);
    }

    #[test]
    fn empty_stream_parses_to_nothing() {
        assert_eq!(
            parse_frames(&BitString::new()).unwrap(),
            Vec::<BitString>::new()
        );
    }

    #[test]
    fn truncated_stream_rejected() {
        let p = BitString::from_bits([true; 10]);
        let f = frame(&p);
        let cut = f.reader().read_bits(f.len() - 2).unwrap();
        assert!(parse_frames(&cut).is_err());
    }

    #[test]
    fn rounds_for_examples() {
        assert_eq!(rounds_for(0, 5), 0);
        assert_eq!(rounds_for(5, 5), 1);
        assert_eq!(rounds_for(6, 5), 2);
    }

    proptest! {
        #[test]
        fn prop_frame_all_roundtrip(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 0..40), 0..6)
        ) {
            let ps: Vec<BitString> = payloads.into_iter().map(BitString::from_bits).collect();
            let stream = frame_all(ps.iter());
            prop_assert_eq!(parse_frames(&stream).unwrap(), ps);
        }
    }
}
