//! # cc-routing — routing substrate for the congested clique
//!
//! Stand-in for Lenzen's `O(1)`-round deterministic routing and sorting
//! protocol (reference \[43\] of Korhonen & Suomela, SPAA 2018), which the
//! paper's Theorem 9 invokes as a black box.
//!
//! Two primitives are provided:
//!
//! * [`route`] — the oblivious **static direct schedule**: every ordered
//!   pair ships its (length-framed) stream over its private link, all links
//!   in parallel; the phase costs exactly the maximum per-link load in
//!   messages. This is optimal for the globally predictable, per-link
//!   balanced patterns used by every algorithm in this workspace.
//! * [`relay_broadcast`] / [`all_to_all_broadcast`] — collective operations
//!   built on `route`, including the classic scatter-then-rebroadcast
//!   doubling trick for large single-source broadcasts.
//!
//! The [`fault`] module is the **fault-aware planning layer**: a
//! [`CrashSet`] (derived from a `cliquesim::FaultPlan` or a live
//! `FaultReport`) lets [`route_faulted`] and [`route_balanced_faulted`]
//! re-plan demands around dead nodes — dropping demands to or from dead
//! endpoints as structured [`Undeliverable`] records and remapping
//! balanced-schedule segments away from dead intermediates — while
//! [`route_resilient`] retransmits chunks over lossy links with a
//! per-chunk majority vote, priced by [`resilient_overhead`].
//!
//! [`lenzen_round_bound`] gives the accounting bound of the full Lenzen
//! protocol for per-node balanced instances; the substitution rationale is
//! documented in DESIGN.md.

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod balanced;
pub mod fault;
pub mod frames;
pub mod router;
pub mod sized;

pub use balanced::{route_balanced, route_balanced_faulted};
pub use fault::{
    resilient_overhead, route_faulted, route_resilient, CrashSet, DeliveryFailure, RoutedOutcome,
    Undeliverable,
};
pub use frames::{frame, frame_all, parse_frames, rounds_for, LEN_HEADER_BITS};
pub use router::{
    all_to_all_broadcast, lenzen_round_bound, relay_broadcast, route, Delivered, RouteError,
};
pub use sized::{
    all_to_all_sized, all_to_all_sized_cost, demand_sizes, route_balanced_sized,
    route_balanced_sized_cost, route_sized, route_sized_cost, DemandSizes,
};
