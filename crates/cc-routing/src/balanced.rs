//! Two-phase balanced routing for globally known demand patterns.
//!
//! The direct schedule of [`crate::route`] pays the *maximum per-link* load.
//! Lenzen's protocol \[43\] pays only the maximum *per-node* load (divided by
//! the node's `n−1` links) — the difference matters for patterns like the
//! matrix-multiplication redistribution, where each node talks to only
//! `n^{2/3}` of the other nodes.
//!
//! For patterns whose demand *sizes* are globally known (every pattern in
//! this workspace: they depend on `n` and `k`, not on input values), the
//! rebalancing can be done without Lenzen's sorting machinery:
//!
//! 1. every sender concatenates its outgoing streams (ordered by
//!    destination) into one megastream and scatters it in `n` near-equal
//!    contiguous segments, segment `j` going to intermediate
//!    `(j + u) mod n` — the rotation decorrelates different senders;
//! 2. every intermediate, knowing the global layout, slices the segments it
//!    holds by final destination and forwards them; receivers reassemble by
//!    position.
//!
//! Phase 1 is perfectly balanced (`⌈T_u/n⌉` bits per link). Phase 2 is
//! balanced for the regular patterns produced by the workspace's algorithms;
//! adversarially skewed patterns can degrade it, which is why the full
//! Lenzen protocol needs sorting — see DESIGN.md for the substitution
//! argument. Tests verify both delivery correctness on random patterns and
//! the round advantage on the patterns that motivated this module.

use cliquesim::{BitString, NodeId, Session};

use crate::frames::{frame_all, parse_frames};
use crate::router::{route, Delivered, RouteError};

/// Bit-range bookkeeping: layout of one sender's megastream.
#[derive(Clone, Debug)]
struct MegaLayout {
    /// For each destination `w`, the megastream range `[start, end)` of the
    /// framed stream headed to `w` (empty ranges allowed).
    ranges: Vec<(usize, usize)>,
    /// Total megastream length.
    total: usize,
}

fn layout_for(stream_sizes: &[usize]) -> MegaLayout {
    let mut ranges = Vec::with_capacity(stream_sizes.len());
    let mut pos = 0;
    for &s in stream_sizes {
        ranges.push((pos, pos + s));
        pos += s;
    }
    MegaLayout { ranges, total: pos }
}

/// Segment `j` of a megastream of length `total` split into `n` near-equal
/// contiguous parts: `[j*ceil(total/n), min((j+1)*ceil(total/n), total))`.
fn segment_range(total: usize, n: usize, j: usize) -> (usize, usize) {
    let seg = total.div_ceil(n).max(1);
    let start = (j * seg).min(total);
    let end = ((j + 1) * seg).min(total);
    (start, end)
}

/// Which intermediate holds segment `j` of sender `u`'s megastream.
fn intermediate_for(u: usize, j: usize, n: usize) -> usize {
    (j + u) % n
}

/// Route a demand set with the two-phase balanced schedule.
///
/// Semantics are identical to [`route`]; only the round cost differs. The
/// demand **sizes** are treated as globally known: every node derives the
/// same global layout, which is legitimate for the information-oblivious
/// patterns of the paper's algorithms (the sizes are functions of `n`, `k`).
pub fn route_balanced(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n);

    // Build framed per-destination streams and megastreams.
    let mut streams: Vec<Vec<BitString>> = Vec::with_capacity(n);
    for (u, list) in demands.into_iter().enumerate() {
        let mut per_dst: Vec<Vec<BitString>> = vec![Vec::new(); n];
        for (dst, payload) in list {
            assert_ne!(dst.index(), u, "demand from node {u} to itself");
            per_dst[dst.index()].push(payload);
        }
        streams.push(
            per_dst
                .into_iter()
                .map(|ps| {
                    if ps.is_empty() {
                        BitString::new()
                    } else {
                        frame_all(ps.iter())
                    }
                })
                .collect(),
        );
    }
    let layouts: Vec<MegaLayout> = streams
        .iter()
        .map(|row| layout_for(&row.iter().map(|s| s.len()).collect::<Vec<_>>()))
        .collect();
    let megas: Vec<BitString> = streams
        .iter()
        .map(|row| {
            let mut m = BitString::new();
            for s in row {
                m.extend_from(s);
            }
            m
        })
        .collect();

    // ---------------- Phase 1: scatter megastream segments ----------------
    let mut phase1: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    // held[p][u] = the segment of u's megastream that intermediate p holds.
    let mut held: Vec<Vec<BitString>> = vec![vec![BitString::new(); n]; n];
    for u in 0..n {
        for j in 0..n {
            let (a, b) = segment_range(layouts[u].total, n, j);
            if a >= b {
                continue;
            }
            let mut r = megas[u].reader();
            r.skip(a).expect("in range");
            let seg = r.read_bits(b - a).expect("in range");
            let p = intermediate_for(u, j, n);
            if p == u {
                held[p][u] = seg; // kept locally, free
            } else {
                phase1[u].push((NodeId::from(p), seg));
            }
        }
    }
    let delivered1 = route(session, phase1)?;
    for (p, list) in delivered1.into_iter().enumerate() {
        for (src, seg) in list {
            held[p][src.index()] = seg;
        }
    }

    // ------------- Phase 2: slice by destination and forward -------------
    // Intermediate p holds segment j_u = (p - u) mod n of each sender u.
    // Forwarded blob p→w = concat over u of (segment_{j_u}(u) ∩ stream(u,w)).
    let mut phase2: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    // keep[w][...] pieces p == w holds for itself.
    let mut kept: Vec<Vec<(usize, usize, BitString)>> = vec![Vec::new(); n]; // (u, order p, bits)
    for p in 0..n {
        for w in 0..n {
            let mut blob = BitString::new();
            for u in 0..n {
                let j = (p + n - u) % n;
                let (sa, sb) = segment_range(layouts[u].total, n, j);
                let (ra, rb) = layouts[u].ranges[w];
                let (ia, ib) = (sa.max(ra), sb.min(rb));
                if ia >= ib {
                    continue;
                }
                // Bits [ia, ib) of u's megastream, offset within the held segment.
                let seg = &held[p][u];
                let mut r = seg.reader();
                r.skip(ia - sa).expect("in range");
                let piece = r.read_bits(ib - ia).expect("in range");
                blob.extend_from(&piece);
            }
            if blob.is_empty() {
                continue;
            }
            if p == w {
                kept[w].push((usize::MAX, p, blob)); // whole blob, parsed below
            } else {
                phase2[p].push((NodeId::from(w), blob));
            }
        }
    }
    let delivered2 = route(session, phase2)?;

    // ------------------- Reassembly at the receivers ---------------------
    // Receiver w reconstructs each framed stream(u, w) by collecting, for
    // each intermediate p in a canonical order, the piece sizes it knows
    // from the global layout.
    let mut result: Vec<Delivered> = Vec::with_capacity(n);
    for w in 0..n {
        // blob_from[p] = the blob w received from intermediate p.
        let mut blob_from: Vec<Option<BitString>> = vec![None; n];
        for (src, blob) in &delivered2[w] {
            blob_from[src.index()] = Some(blob.clone());
        }
        for (_, p, blob) in &kept[w] {
            blob_from[*p] = Some(blob.clone());
        }
        // Per sender u, gather pieces in megastream order.
        let mut per_sender: Vec<BitString> = vec![BitString::new(); n];
        // Walk blobs in the same (p, u) order they were written.
        let mut cursors: Vec<usize> = vec![0; n];
        for p in 0..n {
            for u in 0..n {
                let j = (p + n - u) % n;
                let (sa, sb) = segment_range(layouts[u].total, n, j);
                let (ra, rb) = layouts[u].ranges[w];
                let (ia, ib) = (sa.max(ra), sb.min(rb));
                if ia >= ib {
                    continue;
                }
                let blob = blob_from[p]
                    .as_ref()
                    .ok_or_else(|| RouteError::Malformed(NodeId::from(w), missing_blob(p)))?;
                let mut r = blob.reader();
                r.skip(cursors[p])
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                let piece = r
                    .read_bits(ib - ia)
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                cursors[p] += ib - ia;
                // Pieces for sender u arrive with ascending (ia); insert at
                // the right megastream offset by construction of the walk
                // order? Offsets per u are ascending in j, not in p; collect
                // with explicit position instead.
                let _ = piece;
                // Store with position for later ordered assembly.
                per_sender[u] = {
                    let mut acc = std::mem::take(&mut per_sender[u]);
                    // We rely on ascending (ia) per u across the p-walk; see
                    // assemble() below which re-sorts explicitly.
                    acc.extend_from(&piece_with_pos(ia, &piece));
                    acc
                };
            }
        }
        // Decode (pos, piece) records and stitch streams in offset order.
        let mut delivered = Vec::new();
        for u in 0..n {
            let (ra, rb) = layouts[u].ranges[w];
            if ra == rb {
                continue;
            }
            let stream = stitch(&per_sender[u], rb - ra, ra)
                .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
            let payloads =
                parse_frames(&stream).map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
            for payload in payloads {
                delivered.push((NodeId::from(u), payload));
            }
        }
        result.push(delivered);
    }
    Ok(result)
}

/// Internal record: `pos:32 || len:32 || bits` (local bookkeeping only —
/// never crosses the wire, so it does not count against bandwidth).
fn piece_with_pos(pos: usize, piece: &BitString) -> BitString {
    let mut out = BitString::with_capacity(64 + piece.len());
    out.push_uint(pos as u64, 32);
    out.push_uint(piece.len() as u64, 32);
    out.extend_from(piece);
    out
}

fn stitch(
    records: &BitString,
    want: usize,
    base: usize,
) -> Result<BitString, cliquesim::DecodeError> {
    let mut pieces: Vec<(usize, BitString)> = Vec::new();
    let mut r = records.reader();
    while r.remaining() > 0 {
        let pos = r.read_uint(32)? as usize;
        let len = r.read_uint(32)? as usize;
        pieces.push((pos, r.read_bits(len)?));
    }
    pieces.sort_by_key(|(pos, _)| *pos);
    let mut out = BitString::with_capacity(want);
    let mut expect = base;
    for (pos, bits) in pieces {
        if pos != expect {
            return Err(cliquesim::DecodeError {
                at: pos,
                wanted: want,
                len: out.len(),
            });
        }
        expect += bits.len();
        out.extend_from(&bits);
    }
    if out.len() != want {
        return Err(cliquesim::DecodeError {
            at: expect,
            wanted: want,
            len: out.len(),
        });
    }
    Ok(out)
}

fn missing_blob(p: usize) -> cliquesim::DecodeError {
    cliquesim::DecodeError {
        at: p,
        wanted: 0,
        len: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::Engine;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    fn normalise(mut d: Vec<Delivered>) -> Vec<Vec<(usize, Vec<bool>)>> {
        d.iter_mut()
            .map(|list| {
                let mut v: Vec<(usize, Vec<bool>)> = list
                    .iter()
                    .map(|(s, p)| (s.index(), p.iter().collect()))
                    .collect();
                v.sort();
                v
            })
            .collect()
    }

    #[test]
    fn balanced_matches_direct_on_simple_pattern() {
        let n = 6;
        let mk = |seed: u64| {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            for v in 0..n {
                for _ in 0..rng.gen_range(0..3) {
                    let dst = (v + rng.gen_range(1..n)) % n;
                    let len = rng.gen_range(0..30);
                    let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                    demands[v].push((NodeId::from(dst), payload));
                }
            }
            demands
        };
        for seed in 0..8 {
            let mut s1 = session(n);
            let direct = route(&mut s1, mk(seed)).unwrap();
            let mut s2 = session(n);
            let balanced = route_balanced(&mut s2, mk(seed)).unwrap();
            assert_eq!(normalise(direct), normalise(balanced), "seed {seed}");
        }
    }

    #[test]
    fn balanced_beats_direct_on_skewed_pattern() {
        // One node sends a large payload to a single destination: the direct
        // schedule serialises it over one link; the balanced schedule
        // spreads it over all links.
        let n = 16;
        let payload = BitString::from_bits((0..n * 4 * 8).map(|i| i % 5 == 0));
        let mk = || {
            let mut d: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            d[0].push((NodeId(9), payload.clone()));
            d
        };
        let mut s1 = session(n);
        route(&mut s1, mk()).unwrap();
        let mut s2 = session(n);
        let got = route_balanced(&mut s2, mk()).unwrap();
        assert_eq!(got[9].len(), 1);
        assert_eq!(got[9][0].1, payload);
        assert!(
            s2.stats().rounds < s1.stats().rounds,
            "balanced {} should beat direct {}",
            s2.stats().rounds,
            s1.stats().rounds
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_balanced_delivers_exactly(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2..8);
            let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            for v in 0..n {
                for _ in 0..rng.gen_range(0..4) {
                    let dst = (v + rng.gen_range(1..n)) % n;
                    let len = rng.gen_range(0..60);
                    let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                    demands[v].push((NodeId::from(dst), payload));
                }
            }
            let mut s1 = session(n);
            let direct = route(&mut s1, demands.clone()).unwrap();
            let mut s2 = session(n);
            let balanced = route_balanced(&mut s2, demands).unwrap();
            prop_assert_eq!(normalise(direct), normalise(balanced));
        }
    }
}
