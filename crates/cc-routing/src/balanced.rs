//! Two-phase balanced routing for globally known demand patterns.
//!
//! The direct schedule of [`crate::route`] pays the *maximum per-link* load.
//! Lenzen's protocol \[43\] pays only the maximum *per-node* load (divided by
//! the node's `n−1` links) — the difference matters for patterns like the
//! matrix-multiplication redistribution, where each node talks to only
//! `n^{2/3}` of the other nodes.
//!
//! For patterns whose demand *sizes* are globally known (every pattern in
//! this workspace: they depend on `n` and `k`, not on input values), the
//! rebalancing can be done without Lenzen's sorting machinery:
//!
//! 1. every sender concatenates its outgoing streams (ordered by
//!    destination) into one megastream and scatters it in near-equal
//!    contiguous segments, one per *live* node, segment `j` going to the
//!    intermediate of live rank `(j + rank(u)) mod m` — the rotation
//!    decorrelates different senders;
//! 2. every intermediate, knowing the global layout, slices the segments it
//!    holds by final destination and forwards them; receivers reassemble by
//!    megastream position.
//!
//! Phase 1 is perfectly balanced (`⌈T_u/m⌉` bits per link). Phase 2 is
//! balanced for the regular patterns produced by the workspace's algorithms;
//! adversarially skewed patterns can degrade it, which is why the full
//! Lenzen protocol needs sorting — see DESIGN.md for the substitution
//! argument. Tests verify both delivery correctness on random patterns and
//! the round advantage on the patterns that motivated this module.
//!
//! [`route_balanced_faulted`] is the crash-aware rendering: the same plan
//! computed over the survivor list of a [`crate::CrashSet`], so megastream
//! segments are remapped away from dead intermediates and phase 2 still
//! reassembles. With an empty crash set the survivor list is all of
//! `0..n`, making the faulted plan byte-identical to [`route_balanced`].

use cliquesim::{BitString, NodeId, Session};

use crate::fault::{route_faulted, CrashSet, RoutedOutcome};
use crate::frames::{frame_all, parse_frames};
use crate::router::{route, Delivered, RouteError};

/// One demand list per node: the shape routed by both phases.
type DemandMatrix = Vec<Vec<(NodeId, BitString)>>;

/// Bit-range bookkeeping: layout of one sender's megastream. Shared with
/// the header-free plan in [`crate::sized`].
#[derive(Clone, Debug)]
pub(crate) struct MegaLayout {
    /// For each destination `w`, the megastream range `[start, end)` of the
    /// framed stream headed to `w` (empty ranges allowed).
    pub(crate) ranges: Vec<(usize, usize)>,
    /// Total megastream length.
    pub(crate) total: usize,
}

pub(crate) fn layout_for(stream_sizes: &[usize]) -> MegaLayout {
    let mut ranges = Vec::with_capacity(stream_sizes.len());
    let mut pos = 0;
    for &s in stream_sizes {
        ranges.push((pos, pos + s));
        pos += s;
    }
    MegaLayout { ranges, total: pos }
}

/// Segment `j` of a megastream of length `total` split into `m` near-equal
/// contiguous parts: `[j*ceil(total/m), min((j+1)*ceil(total/m), total))`.
pub(crate) fn segment_range(total: usize, m: usize, j: usize) -> (usize, usize) {
    let seg = total.div_ceil(m).max(1);
    let start = (j * seg).min(total);
    let end = ((j + 1) * seg).min(total);
    (start, end)
}

/// The shared two-phase plan, parameterised by the live node list. With
/// `live == 0..n` it is exactly the original balanced schedule; with a
/// proper survivor list every megastream segment lands on a surviving
/// intermediate and every layout range involves only surviving endpoints.
struct BalancedPlan {
    n: usize,
    /// Surviving node indices, ascending.
    live: Vec<usize>,
    /// Inverse of `live`: `rank[v] = Some(i)` iff `live[i] == v`.
    rank: Vec<Option<usize>>,
    layouts: Vec<MegaLayout>,
    megas: Vec<BitString>,
}

impl BalancedPlan {
    fn new(n: usize, live: Vec<usize>, demands: Vec<Vec<(NodeId, BitString)>>) -> Self {
        let mut rank = vec![None; n];
        for (i, &v) in live.iter().enumerate() {
            rank[v] = Some(i);
        }
        // Framed per-destination streams and megastreams, one per node
        // (dead nodes carry empty demand lists and get empty layouts).
        let mut streams: Vec<Vec<BitString>> = Vec::with_capacity(n);
        for (u, list) in demands.into_iter().enumerate() {
            let mut per_dst: Vec<Vec<BitString>> = vec![Vec::new(); n];
            for (dst, payload) in list {
                assert_ne!(dst.index(), u, "demand from node {u} to itself");
                per_dst[dst.index()].push(payload);
            }
            streams.push(
                per_dst
                    .into_iter()
                    .map(|ps| {
                        if ps.is_empty() {
                            BitString::new()
                        } else {
                            frame_all(ps.iter())
                        }
                    })
                    .collect(),
            );
        }
        let layouts: Vec<MegaLayout> = streams
            .iter()
            .map(|row| layout_for(&row.iter().map(|s| s.len()).collect::<Vec<_>>()))
            .collect();
        let megas: Vec<BitString> = streams
            .iter()
            .map(|row| {
                let mut m = BitString::new();
                for s in row {
                    m.extend_from(s);
                }
                m
            })
            .collect();
        Self {
            n,
            live,
            rank,
            layouts,
            megas,
        }
    }

    /// Number of live nodes (= number of megastream segments per sender).
    fn m(&self) -> usize {
        self.live.len()
    }

    /// Which live node holds segment `j` of live sender `u`'s megastream.
    fn intermediate_for(&self, u: usize, j: usize) -> usize {
        let r = self.rank[u].expect("sender is live");
        self.live[(j + r) % self.m()]
    }

    /// Phase-1 demands (scatter megastream segments) plus the `held[p][u]`
    /// matrix pre-seeded with the segments each sender keeps locally.
    fn scatter(&self) -> (DemandMatrix, Vec<Vec<BitString>>) {
        let m = self.m();
        let mut phase1: DemandMatrix = vec![Vec::new(); self.n];
        let mut held: Vec<Vec<BitString>> = vec![vec![BitString::new(); self.n]; self.n];
        for &u in &self.live {
            for j in 0..m {
                let (a, b) = segment_range(self.layouts[u].total, m, j);
                if a >= b {
                    continue;
                }
                let mut r = self.megas[u].reader();
                r.skip(a).expect("in range");
                let seg = r.read_bits(b - a).expect("in range");
                let p = self.intermediate_for(u, j);
                if p == u {
                    held[p][u] = seg; // kept locally, free
                } else {
                    phase1[u].push((NodeId::from(p), seg));
                }
            }
        }
        (phase1, held)
    }

    /// Phase-2 demands (slice held segments by destination and forward)
    /// plus `kept[w]`: the `(intermediate, blob)` pairs node `w` holds for
    /// itself, in the same ascending-intermediate order the wire delivers.
    fn slice(&self, held: &[Vec<BitString>]) -> (DemandMatrix, Vec<Vec<(usize, BitString)>>) {
        let m = self.m();
        let mut phase2: DemandMatrix = vec![Vec::new(); self.n];
        let mut kept: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); self.n];
        for &p in &self.live {
            let pi = self.rank[p].expect("intermediate is live");
            for w in 0..self.n {
                let mut blob = BitString::new();
                for &u in &self.live {
                    let ui = self.rank[u].expect("sender is live");
                    // p holds segment j of u's megastream iff
                    // intermediate_for(u, j) == p, i.e. j = pi - ui (mod m).
                    let j = (pi + m - ui) % m;
                    let (sa, sb) = segment_range(self.layouts[u].total, m, j);
                    let (ra, rb) = self.layouts[u].ranges[w];
                    let (ia, ib) = (sa.max(ra), sb.min(rb));
                    if ia >= ib {
                        continue;
                    }
                    // Bits [ia, ib) of u's megastream, offset within the
                    // held segment.
                    let seg = &held[p][u];
                    let mut r = seg.reader();
                    r.skip(ia - sa).expect("in range");
                    let piece = r.read_bits(ib - ia).expect("in range");
                    blob.extend_from(&piece);
                }
                if blob.is_empty() {
                    continue;
                }
                if p == w {
                    kept[w].push((p, blob));
                } else {
                    phase2[p].push((NodeId::from(w), blob));
                }
            }
        }
        (phase2, kept)
    }

    /// Reassemble receiver `w`'s delivered streams from the phase-2 blobs
    /// (`blob_from[p]` = the blob `w` got from intermediate `p`). Each
    /// blob is consumed in the same `(p, u)` order it was written; pieces
    /// are collected as explicit `(megastream position, bits)` pairs and
    /// stitched per sender in position order.
    fn reassemble(
        &self,
        w: usize,
        blob_from: &[Option<BitString>],
    ) -> Result<Delivered, RouteError> {
        let m = self.m();
        let mut per_sender: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); self.n];
        let mut cursors: Vec<usize> = vec![0; self.n];
        for &p in &self.live {
            let pi = self.rank[p].expect("intermediate is live");
            for &u in &self.live {
                let ui = self.rank[u].expect("sender is live");
                let j = (pi + m - ui) % m;
                let (sa, sb) = segment_range(self.layouts[u].total, m, j);
                let (ra, rb) = self.layouts[u].ranges[w];
                let (ia, ib) = (sa.max(ra), sb.min(rb));
                if ia >= ib {
                    continue;
                }
                let blob = blob_from[p]
                    .as_ref()
                    .ok_or_else(|| RouteError::Malformed(NodeId::from(w), missing_blob(p)))?;
                let mut r = blob.reader();
                r.skip(cursors[p])
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                let piece = r
                    .read_bits(ib - ia)
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                cursors[p] += ib - ia;
                per_sender[u].push((ia, piece));
            }
        }
        // Stitch each sender's pieces in megastream-position order and
        // parse the framed stream back into payloads.
        let mut delivered = Vec::new();
        for u in 0..self.n {
            let (ra, rb) = self.layouts[u].ranges[w];
            if ra == rb {
                continue;
            }
            let stream = stitch(std::mem::take(&mut per_sender[u]), rb - ra, ra)
                .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
            let payloads =
                parse_frames(&stream).map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
            for payload in payloads {
                delivered.push((NodeId::from(u), payload));
            }
        }
        Ok(delivered)
    }
}

/// Route a demand set with the two-phase balanced schedule.
///
/// Semantics are identical to [`route`]; only the round cost differs. The
/// demand **sizes** are treated as globally known: every node derives the
/// same global layout, which is legitimate for the information-oblivious
/// patterns of the paper's algorithms (the sizes are functions of `n`, `k`).
pub fn route_balanced(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n);
    let plan = BalancedPlan::new(n, (0..n).collect(), demands);

    let (phase1, mut held) = plan.scatter();
    let delivered1 = route(session, phase1)?;
    for (p, list) in delivered1.into_iter().enumerate() {
        for (src, seg) in list {
            held[p][src.index()] = seg;
        }
    }

    let (phase2, kept) = plan.slice(&held);
    let delivered2 = route(session, phase2)?;

    let mut result: Vec<Delivered> = Vec::with_capacity(n);
    for w in 0..n {
        let mut blob_from: Vec<Option<BitString>> = vec![None; n];
        for (src, blob) in &delivered2[w] {
            blob_from[src.index()] = Some(blob.clone());
        }
        for (p, blob) in &kept[w] {
            blob_from[*p] = Some(blob.clone());
        }
        result.push(plan.reassemble(w, &blob_from)?);
    }
    Ok(result)
}

/// Crash-aware balanced routing: the two-phase plan computed over the
/// survivor list of `crash`, run under the engine's fault plan.
///
/// Demands to or from dead endpoints are dropped at planning time and
/// reported in [`RoutedOutcome::undeliverable`]; megastream segments are
/// remapped away from dead intermediates, so phase 2 still reassembles and
/// every payload between surviving endpoints is delivered. With an empty
/// crash set the plan — phase demands, schedule, every bit on the wire —
/// is identical to [`route_balanced`].
pub fn route_balanced_faulted(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
    crash: &CrashSet,
) -> Result<RoutedOutcome, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n);
    let (live_demands, undeliverable) = crash.partition_demands(demands);
    let live: Vec<usize> = (0..n)
        .filter(|&v| !crash.is_dead(NodeId::from(v)))
        .collect();
    let plan = BalancedPlan::new(n, live, live_demands);

    let (phase1, mut held) = plan.scatter();
    let out1 = route_faulted(session, phase1, crash)?;
    for (p, slot) in out1.delivered.iter().enumerate() {
        if let Some(list) = slot {
            for (src, seg) in list {
                held[p][src.index()] = seg.clone();
            }
        }
    }

    let (phase2, kept) = plan.slice(&held);
    let out2 = route_faulted(session, phase2, crash)?;

    let mut delivered: Vec<Option<Delivered>> = Vec::with_capacity(n);
    for w in 0..n {
        if crash.is_dead(NodeId::from(w)) {
            delivered.push(None);
            continue;
        }
        let mut blob_from: Vec<Option<BitString>> = vec![None; n];
        if let Some(list) = &out2.delivered[w] {
            for (src, blob) in list {
                blob_from[src.index()] = Some(blob.clone());
            }
        }
        for (p, blob) in &kept[w] {
            blob_from[*p] = Some(blob.clone());
        }
        delivered.push(Some(plan.reassemble(w, &blob_from)?));
    }

    let mut stats = out1.stats.clone();
    stats.absorb(&out2.stats);
    let mut report = out1.report;
    report.events.extend(out2.report.events);
    Ok(RoutedOutcome {
        delivered,
        undeliverable,
        stats,
        report,
    })
}

/// Stitch explicit `(megastream position, bits)` pieces into one contiguous
/// stream covering `[base, base + want)`.
pub(crate) fn stitch(
    mut pieces: Vec<(usize, BitString)>,
    want: usize,
    base: usize,
) -> Result<BitString, cliquesim::DecodeError> {
    pieces.sort_by_key(|(pos, _)| *pos);
    let mut out = BitString::with_capacity(want);
    let mut expect = base;
    for (pos, bits) in pieces {
        if pos != expect {
            return Err(cliquesim::DecodeError {
                at: pos,
                wanted: want,
                len: out.len(),
            });
        }
        expect += bits.len();
        out.extend_from(&bits);
    }
    if out.len() != want {
        return Err(cliquesim::DecodeError {
            at: expect,
            wanted: want,
            len: out.len(),
        });
    }
    Ok(out)
}

pub(crate) fn missing_blob(p: usize) -> cliquesim::DecodeError {
    cliquesim::DecodeError {
        at: p,
        wanted: 0,
        len: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::Engine;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    fn normalise(mut d: Vec<Delivered>) -> Vec<Vec<(usize, Vec<bool>)>> {
        d.iter_mut()
            .map(|list| {
                let mut v: Vec<(usize, Vec<bool>)> = list
                    .iter()
                    .map(|(s, p)| (s.index(), p.iter().collect()))
                    .collect();
                v.sort();
                v
            })
            .collect()
    }

    fn random_demands(n: usize, seed: u64, max_len: usize) -> Vec<Vec<(NodeId, BitString)>> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
        for v in 0..n {
            for _ in 0..rng.gen_range(0..4) {
                let dst = (v + rng.gen_range(1..n)) % n;
                let len = rng.gen_range(0..max_len);
                let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                demands[v].push((NodeId::from(dst), payload));
            }
        }
        demands
    }

    #[test]
    fn balanced_matches_direct_on_simple_pattern() {
        let n = 6;
        for seed in 0..8 {
            let mut s1 = session(n);
            let direct = route(&mut s1, random_demands(n, seed, 30)).unwrap();
            let mut s2 = session(n);
            let balanced = route_balanced(&mut s2, random_demands(n, seed, 30)).unwrap();
            assert_eq!(normalise(direct), normalise(balanced), "seed {seed}");
        }
    }

    #[test]
    fn balanced_beats_direct_on_skewed_pattern() {
        // One node sends a large payload to a single destination: the direct
        // schedule serialises it over one link; the balanced schedule
        // spreads it over all links.
        let n = 16;
        let payload = BitString::from_bits((0..n * 4 * 8).map(|i| i % 5 == 0));
        let mk = || {
            let mut d: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            d[0].push((NodeId(9), payload.clone()));
            d
        };
        let mut s1 = session(n);
        route(&mut s1, mk()).unwrap();
        let mut s2 = session(n);
        let got = route_balanced(&mut s2, mk()).unwrap();
        assert_eq!(got[9].len(), 1);
        assert_eq!(got[9][0].1, payload);
        assert!(
            s2.stats().rounds < s1.stats().rounds,
            "balanced {} should beat direct {}",
            s2.stats().rounds,
            s1.stats().rounds
        );
    }

    #[test]
    fn balanced_zero_length_megastream_is_free() {
        // A node with no demands has a zero-length megastream; nodes with
        // demands still route, and the empty sender costs nothing.
        let n = 5;
        let mut s = session(n);
        let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
        demands[1].push((NodeId(3), BitString::from_bits([true, false, true])));
        let got = route_balanced(&mut s, demands).unwrap();
        assert_eq!(got[3].len(), 1);
        assert_eq!(got[3][0].0, NodeId(1));
        // All-empty demand set: schedule 0, nothing delivered.
        let mut s2 = session(n);
        let got2 = route_balanced(&mut s2, vec![Vec::new(); n]).unwrap();
        assert!(got2.iter().all(|d| d.is_empty()));
        assert_eq!(s2.stats().rounds, 0);
    }

    #[test]
    fn rejoined_intermediate_is_readmitted_in_the_next_wave() {
        use cliquesim::FaultPlan;
        // Waves on a fixed 40-round cadence: node 2 is down for all of
        // wave 1 (plan rounds 0..40) and back from round 40 on. The
        // windowed crash sets avoid it in wave 1 and re-admit it in wave
        // 2, where it carries megastream segments and receives again.
        let n = 6;
        let plan = FaultPlan::new(0)
            .crash(NodeId(2), 0)
            .rejoin(NodeId(2), 40)
            .expect("crash precedes rejoin");
        let mut s = Session::new(Engine::new(n).with_fault_plan(plan.clone()));
        let wave1 = CrashSet::from_plan_window(&plan, 0..40);
        assert!(wave1.is_dead(NodeId(2)));
        let out1 = route_balanced_faulted(&mut s, random_demands(n, 3, 30), &wave1).unwrap();
        assert!(out1.delivered[2].is_none(), "down for the whole wave");
        let touching_dead = random_demands(n, 3, 30)
            .iter()
            .enumerate()
            .flat_map(|(s, list)| list.iter().map(move |(d, _)| (s, d.index())))
            .filter(|(s, d)| *s == 2 || *d == 2)
            .count();
        assert_eq!(out1.undeliverable.len(), touching_dead);
        // Advance the fault clock to the wave boundary and re-plan: the
        // completed crash/rejoin pair drops out of the window.
        s.set_fault_offset(40);
        let wave2 = CrashSet::from_plan_window(&plan, 40..usize::MAX);
        assert!(wave2.is_empty(), "node 2 recovered: {wave2}");
        let out2 = route_balanced_faulted(&mut s, random_demands(n, 4, 30), &wave2).unwrap();
        assert!(out2.delivered[2].is_some(), "re-admitted after its rejoin");
        assert!(out2.undeliverable.is_empty());
        // Wave 2 deliveries match the unfaulted balanced route exactly.
        let mut clean = session(n);
        let want = route_balanced(&mut clean, random_demands(n, 4, 30)).unwrap();
        let got: Vec<Delivered> = out2
            .delivered
            .into_iter()
            .map(|d| d.expect("all alive"))
            .collect();
        assert_eq!(normalise(want), normalise(got));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_balanced_delivers_exactly(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2..8);
            let demands = random_demands(n, seed.wrapping_add(1), 60);
            let mut s1 = session(n);
            let direct = route(&mut s1, demands.clone()).unwrap();
            let mut s2 = session(n);
            let balanced = route_balanced(&mut s2, demands).unwrap();
            prop_assert_eq!(normalise(direct), normalise(balanced));
        }

        #[test]
        fn prop_empty_crash_set_is_byte_identical(seed in any::<u64>()) {
            // Transparency, mirroring `assert_empty_plan_transparent`: the
            // crash-aware plan under an empty crash set must reproduce
            // `route_balanced` exactly — same deliveries, same rounds, same
            // bits on the wire.
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2..8);
            let demands = random_demands(n, seed.wrapping_add(2), 60);
            let mut s1 = session(n);
            let plain = route_balanced(&mut s1, demands.clone()).unwrap();
            let mut s2 = session(n);
            let faulted = route_balanced_faulted(&mut s2, demands, &CrashSet::new()).unwrap();
            prop_assert!(faulted.undeliverable.is_empty());
            prop_assert!(faulted.report.is_empty());
            let unwrapped: Vec<Delivered> = faulted
                .delivered
                .into_iter()
                .map(|d| d.expect("no node is dead"))
                .collect();
            prop_assert_eq!(&plain, &unwrapped, "deliveries diverge");
            prop_assert_eq!(s1.stats(), s2.stats(), "wire cost diverges");
        }
    }
}
