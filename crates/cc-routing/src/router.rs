//! Oblivious static routing.
//!
//! Lenzen's routing theorem [43 in the paper] delivers any instance where
//! every node is the source and destination of at most `n` messages in
//! `O(1)` rounds. Every use of that black box in this paper (Theorem 9's
//! k-dominating-set algorithm, the Dolev et al. subgraph detector, the
//! matrix-multiplication redistributions) routes a pattern whose *per-link*
//! demand is globally predictable and balanced. For such patterns the
//! trivial direct schedule — pair `(u, w)` uses its own dedicated link for
//! `⌈bits(u,w)/B⌉` consecutive rounds, all links in parallel — already
//! matches the asymptotics, because the clique gives every ordered pair a
//! private link. The sorting machinery in Lenzen's protocol exists to handle
//! *unbalanced* per-link demands without global knowledge; see
//! [`lenzen_round_bound`] for the accounting bound we use when an algorithm
//! is entitled to the stronger guarantee. This substitution is recorded in
//! DESIGN.md.

use cliquesim::{
    BitString, DecodeError, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Session, SimError, Status,
};

use crate::frames::{frame_all, parse_frames, rounds_for};

/// Messages delivered to one node by a routing phase: `(source, payload)`
/// pairs, sources in increasing order, payloads per source in sending order.
pub type Delivered = Vec<(NodeId, BitString)>;

/// Errors from a routing phase.
#[derive(Debug)]
pub enum RouteError {
    /// The underlying simulation failed (bandwidth/round-limit violations).
    Sim(SimError),
    /// A received stream failed to parse (indicates a harness bug).
    Malformed(NodeId, DecodeError),
    /// The engine ran a different number of rounds than the statically
    /// computed schedule — the schedule and the engine disagree about the
    /// phase length, so delivered streams cannot be trusted.
    ScheduleMismatch {
        /// Rounds the static schedule promised.
        expected: usize,
        /// Rounds the engine actually ran.
        actual: usize,
    },
    /// A node outside the declared crash set crashed mid-phase, so its
    /// streams may have been cut mid-chunk. Re-plan with a crash set that
    /// covers the fault plan (see `CrashSet::from_plan`).
    UnplannedCrash(NodeId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Sim(e) => write!(f, "routing simulation error: {e}"),
            RouteError::Malformed(v, e) => {
                write!(f, "node {} received a malformed stream: {e}", v.display())
            }
            RouteError::ScheduleMismatch { expected, actual } => write!(
                f,
                "engine ran {actual} rounds but the schedule promised {expected}"
            ),
            RouteError::UnplannedCrash(v) => write!(
                f,
                "node {} crashed but is not in the declared crash set",
                v.display()
            ),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<SimError> for RouteError {
    fn from(e: SimError) -> Self {
        RouteError::Sim(e)
    }
}

/// The node program executing a static schedule: each round, ship the next
/// bandwidth-sized chunk of every outgoing stream; collect incoming chunks;
/// halt after the globally known schedule length.
pub(crate) struct RouterNode {
    /// Framed outgoing stream per destination; round `r` ships bits
    /// `[r·B, (r+1)·B)`, cut on demand (cursor skips are O(1)).
    out_streams: Vec<BitString>,
    /// Read cursor per destination.
    cursors: Vec<usize>,
    /// Accumulated raw bits per source.
    collected: Vec<BitString>,
    /// Schedule length: number of communication rounds (globally known —
    /// in the algorithms of the paper it is a function of `n` and `k`).
    schedule: usize,
}

impl NodeProgram for RouterNode {
    type Output = Vec<BitString>;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Vec<BitString>> {
        // Collect chunks that arrived this round.
        if round > 0 {
            for (src, msg) in inbox.iter() {
                self.collected[src.index()].extend_from(msg);
            }
        }
        if round == self.schedule {
            return Status::Halt(std::mem::take(&mut self.collected));
        }
        // Ship this round's chunk of every stream.
        for dst in 0..ctx.n {
            if dst == ctx.id.index() {
                continue;
            }
            let stream = &self.out_streams[dst];
            let cur = self.cursors[dst];
            if cur >= stream.len() {
                continue;
            }
            let take = ctx.bandwidth.min(stream.len() - cur);
            let mut r = stream.reader();
            r.skip(cur).expect("cursor in range");
            let chunk = r.read_bits(take).expect("chunk in range");
            self.cursors[dst] = cur + take;
            outbox.send(NodeId::from(dst), chunk);
        }
        Status::Continue
    }
}

/// Route an explicit demand set with the static direct schedule.
///
/// `demands[v]` lists `(destination, payload)` pairs originating at node
/// `v`; multiple payloads per destination are allowed and arrive in order.
/// Returns, per node, the delivered `(source, payload)` pairs. The phase
/// costs exactly `max_{(u,w)} ⌈(Σ payload + 32·count) / B⌉` rounds, which
/// the session records.
pub fn route(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n, "one demand list per node");
    let bandwidth = session.bandwidth();

    let streams = build_streams(n, demands);
    let schedule = schedule_for(&streams, bandwidth);
    let programs = make_programs(n, streams, schedule);

    let outcome = session.run(programs)?;
    check_schedule(schedule, outcome.stats.rounds)?;

    // Parse each node's per-source streams back into payloads.
    let mut result = Vec::with_capacity(n);
    for (v, collected) in outcome.outputs.into_iter().enumerate() {
        result.push(parse_delivered(v, collected)?);
    }
    Ok(result)
}

/// Build the framed per-link stream matrix: `streams[v][w]` is everything
/// node `v` ships to node `w`, each payload length-framed.
pub(crate) fn build_streams(
    n: usize,
    demands: Vec<Vec<(NodeId, BitString)>>,
) -> Vec<Vec<BitString>> {
    let mut streams: Vec<Vec<BitString>> = Vec::with_capacity(n);
    for (v, list) in demands.into_iter().enumerate() {
        let mut per_dst: Vec<Vec<&BitString>> = vec![Vec::new(); n];
        for (dst, payload) in &list {
            assert_ne!(dst.index(), v, "demand from node {v} to itself");
            per_dst[dst.index()].push(payload);
        }
        streams.push(
            per_dst
                .into_iter()
                .map(|ps| {
                    if ps.is_empty() {
                        BitString::new()
                    } else {
                        frame_all(ps)
                    }
                })
                .collect(),
        );
    }
    streams
}

/// The globally known schedule length for a stream matrix: the maximum
/// per-link round count.
pub(crate) fn schedule_for(streams: &[Vec<BitString>], bandwidth: usize) -> usize {
    streams
        .iter()
        .flat_map(|row| row.iter())
        .map(|s| rounds_for(s.len(), bandwidth))
        .max()
        .unwrap_or(0)
}

/// One [`RouterNode`] per node, all sharing the same schedule length.
pub(crate) fn make_programs(
    n: usize,
    streams: Vec<Vec<BitString>>,
    schedule: usize,
) -> Vec<RouterNode> {
    streams
        .into_iter()
        .map(|row| RouterNode {
            collected: vec![BitString::new(); n],
            cursors: vec![0; n],
            out_streams: row,
            schedule,
        })
        .collect()
}

/// Reject a schedule/engine disagreement as a structured error (a
/// `debug_assert` here would vanish in release builds, which is exactly
/// where the release-mode CI job needs the check).
pub(crate) fn check_schedule(expected: usize, actual: usize) -> Result<(), RouteError> {
    if expected != actual {
        return Err(RouteError::ScheduleMismatch { expected, actual });
    }
    Ok(())
}

/// Parse one node's collected per-source streams back into delivered
/// `(source, payload)` pairs.
pub(crate) fn parse_delivered(
    v: usize,
    collected: Vec<BitString>,
) -> Result<Delivered, RouteError> {
    let mut delivered = Vec::new();
    for (src, stream) in collected.into_iter().enumerate() {
        if stream.is_empty() {
            continue;
        }
        let payloads =
            parse_frames(&stream).map_err(|e| RouteError::Malformed(NodeId::from(v), e))?;
        for p in payloads {
            delivered.push((NodeId::from(src), p));
        }
    }
    Ok(delivered)
}

/// All-to-all broadcast: node `v` sends `payloads[v]` to everyone. Returns
/// for each node the full vector of payloads (including its own, copied
/// locally for free).
pub fn all_to_all_broadcast(
    session: &mut Session,
    payloads: Vec<BitString>,
) -> Result<Vec<Vec<BitString>>, RouteError> {
    let n = session.n();
    assert_eq!(payloads.len(), n);
    let demands: Vec<Vec<(NodeId, BitString)>> = payloads
        .iter()
        .enumerate()
        .map(|(v, p)| {
            (0..n)
                .filter(|&u| u != v)
                .map(|u| (NodeId::from(u), p.clone()))
                .collect()
        })
        .collect();
    let delivered = route(session, demands)?;
    let mut views = Vec::with_capacity(n);
    for (v, mut inbox) in delivered.into_iter().enumerate() {
        inbox.push((NodeId::from(v), payloads[v].clone()));
        inbox.sort_by_key(|(src, _)| src.index());
        views.push(inbox.into_iter().map(|(_, p)| p).collect());
    }
    Ok(views)
}

/// One node broadcasts a payload of up to ~`n·B` bits to everyone in two
/// routing phases (scatter the pieces, then every holder rebroadcasts its
/// piece) — the classic congested clique doubling trick. For payloads of
/// `Θ(n log n)` bits this takes `O(1)` rounds where the naive direct
/// broadcast takes `Θ(n)`.
pub fn relay_broadcast(
    session: &mut Session,
    src: NodeId,
    payload: &BitString,
) -> Result<Vec<BitString>, RouteError> {
    let n = session.n();
    // Scatter: cut the payload into n nearly equal pieces; node i gets piece i.
    let piece_len = payload.len().div_ceil(n.max(1));
    let mut pieces: Vec<BitString> = Vec::with_capacity(n);
    {
        let mut r = payload.reader();
        for _ in 0..n {
            let take = piece_len.min(r.remaining());
            pieces.push(r.read_bits(take).expect("piece in range"));
        }
    }
    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for (i, piece) in pieces.iter().enumerate() {
        if i != src.index() {
            demands[src.index()].push((NodeId::from(i), piece.clone()));
        }
    }
    let delivered = route(session, demands)?;

    // Rebroadcast: node i broadcasts its piece; everyone reassembles.
    let my_piece: Vec<BitString> = (0..n)
        .map(|i| {
            if i == src.index() {
                pieces[i].clone()
            } else {
                delivered[i]
                    .first()
                    .map(|(_, p)| p.clone())
                    .unwrap_or_default()
            }
        })
        .collect();
    let views = all_to_all_broadcast(session, my_piece)?;
    Ok(views
        .into_iter()
        .map(|pieces| {
            let mut whole = BitString::with_capacity(payload.len());
            for p in &pieces {
                whole.extend_from(p);
            }
            whole
        })
        .collect())
}

/// The round bound Lenzen's protocol guarantees for an instance where every
/// node sends at most `out_bits` and receives at most `in_bits` in total:
/// `O(⌈max(out,in) / (n·B)⌉)`. Algorithms that only need accounting (rather
/// than data movement) may charge this against a session.
pub fn lenzen_round_bound(out_bits: usize, in_bits: usize, n: usize, bandwidth: usize) -> usize {
    let per_round = (n.saturating_sub(1)).max(1) * bandwidth;
    out_bits.max(in_bits).div_ceil(per_round).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::Engine;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    #[test]
    fn single_small_message_is_one_round() {
        let mut s = session(4);
        let payload = BitString::from_bits([true, false]);
        let mut demands = vec![Vec::new(); 4];
        demands[0].push((NodeId(3), payload.clone()));
        let got = route(&mut s, demands).unwrap();
        assert_eq!(got[3], vec![(NodeId(0), payload)]);
        assert!(got[0].is_empty() && got[1].is_empty() && got[2].is_empty());
        // 2 + 32 header bits at bandwidth 2 → 17 rounds.
        assert_eq!(s.stats().rounds, 17);
    }

    #[test]
    fn wide_bandwidth_single_round() {
        let mut s = Session::new(Engine::new(4).with_bandwidth(64));
        let mut demands = vec![Vec::new(); 4];
        demands[1].push((NodeId(2), BitString::from_bits([true; 30])));
        route(&mut s, demands).unwrap();
        assert_eq!(s.stats().rounds, 1);
    }

    #[test]
    fn multiple_payloads_same_link_preserve_order() {
        let mut s = Session::new(Engine::new(3).with_bandwidth(16));
        let a = BitString::from_bits([true; 5]);
        let b = BitString::from_bits([false; 7]);
        let mut demands = vec![Vec::new(); 3];
        demands[0].push((NodeId(2), a.clone()));
        demands[0].push((NodeId(2), b.clone()));
        let got = route(&mut s, demands).unwrap();
        assert_eq!(got[2], vec![(NodeId(0), a), (NodeId(0), b)]);
    }

    #[test]
    fn rounds_match_max_link_load() {
        // One heavy link dominates the schedule.
        let n = 5;
        let mut s = Session::new(Engine::new(n).with_bandwidth(8));
        let heavy = BitString::zeros(100); // 132 bits framed → 17 rounds at B=8
        let light = BitString::zeros(4); // 36 bits framed → 5 rounds
        let mut demands = vec![Vec::new(); n];
        demands[0].push((NodeId(1), heavy));
        demands[2].push((NodeId(3), light));
        route(&mut s, demands).unwrap();
        assert_eq!(s.stats().rounds, (100 + 32usize).div_ceil(8));
    }

    #[test]
    fn all_to_all_broadcast_views_agree() {
        let n = 6;
        let mut s = session(n);
        let payloads: Vec<BitString> = (0..n)
            .map(|v| {
                let mut b = BitString::new();
                b.push_uint(v as u64, 8);
                b
            })
            .collect();
        let views = all_to_all_broadcast(&mut s, payloads.clone()).unwrap();
        for view in &views {
            assert_eq!(view, &payloads);
        }
    }

    #[test]
    fn relay_broadcast_beats_direct_for_large_payloads() {
        let n = 16;
        let payload = BitString::from_bits((0..n * 4 * 3).map(|i| i % 3 == 0));
        let mut s = session(n); // bandwidth 4
        let views = relay_broadcast(&mut s, NodeId(2), &payload).unwrap();
        for v in &views {
            assert_eq!(v, &payload);
        }
        let relay_rounds = s.stats().rounds;
        // Direct: single link ships the whole framed payload.
        let mut s2 = session(n);
        let mut demands = vec![Vec::new(); n];
        for u in 0..n {
            if u != 2 {
                demands[2].push((NodeId::from(u), payload.clone()));
            }
        }
        route(&mut s2, demands).unwrap();
        let direct_rounds = s2.stats().rounds;
        assert!(
            relay_rounds < direct_rounds,
            "relay {relay_rounds} should beat direct {direct_rounds}"
        );
    }

    #[test]
    fn zero_length_payloads_are_delivered() {
        // A zero-length payload still costs its 32-bit frame header and
        // must arrive as an explicit empty delivery, not vanish.
        let mut s = session(4);
        let mut demands = vec![Vec::new(); 4];
        demands[0].push((NodeId(2), BitString::new()));
        demands[1].push((NodeId(2), BitString::new()));
        let got = route(&mut s, demands).unwrap();
        assert_eq!(
            got[2],
            vec![(NodeId(0), BitString::new()), (NodeId(1), BitString::new())]
        );
        assert_eq!(s.stats().rounds, 32usize.div_ceil(2), "header-only frames");
    }

    #[test]
    fn two_node_clique_routes_both_directions() {
        let mut s = Session::new(Engine::new(2).with_bandwidth(8));
        let a = BitString::from_bits([true, false, true]);
        let b = BitString::from_bits([false; 6]);
        let demands = vec![vec![(NodeId(1), a.clone())], vec![(NodeId(0), b.clone())]];
        let got = route(&mut s, demands).unwrap();
        assert_eq!(got[0], vec![(NodeId(1), b)]);
        assert_eq!(got[1], vec![(NodeId(0), a)]);
    }

    #[test]
    fn all_empty_demands_cost_zero_rounds() {
        let n = 5;
        let mut s = session(n);
        let got = route(&mut s, vec![Vec::new(); n]).unwrap();
        assert!(got.iter().all(|d| d.is_empty()));
        assert_eq!(s.stats().rounds, 0, "schedule 0: no communication");
        assert_eq!(s.stats().messages, 0);
    }

    #[test]
    fn relay_broadcast_of_empty_payload() {
        let n = 4;
        let mut s = session(n);
        let views = relay_broadcast(&mut s, NodeId(1), &BitString::new()).unwrap();
        assert_eq!(views.len(), n);
        assert!(views.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn relay_broadcast_on_two_nodes() {
        let mut s = Session::new(Engine::new(2).with_bandwidth(8));
        let payload = BitString::from_bits((0..20).map(|i| i % 2 == 0));
        let views = relay_broadcast(&mut s, NodeId(0), &payload).unwrap();
        assert_eq!(views, vec![payload.clone(), payload]);
    }

    #[test]
    fn lenzen_bound_sane() {
        // n messages of log n bits each: O(1) rounds.
        let n = 256;
        let b = 8;
        assert_eq!(lenzen_round_bound(n * b, n * b, n, b), 2); // ceil(2048/2040)
        assert_eq!(lenzen_round_bound(0, 0, n, b), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_route_delivers_exactly(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2..9);
            let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            let mut expected: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
            for v in 0..n {
                for _ in 0..rng.gen_range(0..4) {
                    let dst = (v + rng.gen_range(1..n)) % n;
                    let len = rng.gen_range(0..50);
                    let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                    demands[v].push((NodeId::from(dst), payload.clone()));
                    expected[dst].push((NodeId::from(v), payload));
                }
            }
            let mut s = session(n);
            let mut got = route(&mut s, demands).unwrap();
            for v in 0..n {
                // Compare as multisets keyed by source, preserving per-source order.
                let key = |l: &Vec<(NodeId, BitString)>| {
                    let mut m: Vec<(usize, Vec<BitString>)> = Vec::new();
                    for (src, p) in l {
                        match m.iter_mut().find(|(s, _)| *s == src.index()) {
                            Some((_, ps)) => ps.push(p.clone()),
                            None => m.push((src.index(), vec![p.clone()])),
                        }
                    }
                    m.sort_by_key(|(s, _)| *s);
                    m
                };
                prop_assert_eq!(key(&got[v]), key(&expected[v]));
                got[v].clear();
            }
        }
    }
}
