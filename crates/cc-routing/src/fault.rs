//! Fault-aware routing: plan around crashed nodes, retransmit over lossy
//! links.
//!
//! The static schedules of [`crate::route`] and [`crate::route_balanced`]
//! assume every link delivers: one crashed node turns received streams into
//! `Malformed` parse errors. This module is the planning layer that makes
//! routing *degrade* instead of *error*:
//!
//! * a [`CrashSet`] names the nodes to treat as dead — built statically
//!   from a [`cliquesim::FaultPlan`]'s full churn schedule
//!   ([`CrashSet::from_plan`], via [`cliquesim::FaultPlan::ever_dead_in`]),
//!   from one *wave* of it ([`CrashSet::from_plan_window`], which
//!   re-admits nodes whose crash/rejoin pair completed before the window —
//!   the self-healing rung: a recovered node carries megastream segments
//!   again in the very next wave), or from a live
//!   [`cliquesim::FaultReport`] ([`CrashSet::from_report`]); members carry
//!   their downtime timelines, queryable via [`CrashSet::alive_at`];
//! * [`route_faulted`] re-plans an explicit demand set around the crash
//!   set: demands to or from dead endpoints are dropped at planning time
//!   and reported as structured [`Undeliverable`] records, while every
//!   demand between surviving endpoints rides its private link exactly as
//!   in [`crate::route`] — a crashed third party cannot touch it;
//! * [`crate::route_balanced_faulted`] does the same for the two-phase
//!   balanced schedule, remapping megastream segments away from dead
//!   intermediates so phase 2 still reassembles;
//! * [`route_resilient`] handles the *lossy-link* tier instead: every
//!   stream chunk is retransmitted `k` times and receivers take a
//!   per-chunk majority vote ([`cc_resilient::majority_payload`] — the
//!   same per-link machinery as `cc-resilient`'s `RepeatBroadcast`), with
//!   [`resilient_overhead`] pricing the `k×` cost analytically for
//!   [`cliquesim::Session::charge`].
//!
//! The planning view is conservative: a node scheduled to crash at *any*
//! round of the phase is treated as dead for the whole phase. Survivor
//! traffic therefore never touches a crashing node, and a mid-phase crash
//! can only lose payloads the plan already reported undeliverable.

use std::collections::BTreeSet;
use std::fmt;

use cc_resilient::majority_payload;
use cliquesim::{
    BitString, FaultPlan, FaultReport, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, RunStats,
    Session, Status,
};

use crate::router::{
    build_streams, check_schedule, make_programs, parse_delivered, schedule_for, Delivered,
    RouteError,
};

/// The set of nodes a routing plan treats as crashed.
///
/// Planning data, conservative by construction: a node in the set is
/// avoided for the whole phase the set was built for, whenever it actually
/// dies within it (see the module docs). Sets built from a
/// [`FaultPlan`] additionally carry each member's *downtime timeline*, so
/// [`CrashSet::alive_at`] can answer round-addressed liveness and
/// [`CrashSet::from_plan_window`] can re-admit a rejoined node for a later
/// wave — the self-healing half of the churn tier. Equality compares the
/// dead set only (the planning-relevant payload), never the timelines.
#[derive(Clone, Debug, Default, Eq)]
pub struct CrashSet {
    dead: BTreeSet<u32>,
    /// Downtime intervals `(node, start, end)`, end-exclusive with
    /// `usize::MAX` meaning "never rejoins". Members inserted without a
    /// schedule (builder form, reports) get `(0, usize::MAX)`.
    downtime: Vec<(u32, usize, usize)>,
}

impl PartialEq for CrashSet {
    fn eq(&self, other: &Self) -> bool {
        // Timelines are advisory; two plans that avoid the same nodes are
        // the same plan (pinned by `crash_set_builders_agree`).
        self.dead == other.dead
    }
}

impl CrashSet {
    /// The empty crash set: planning with it is byte-identical to the
    /// unfaulted schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// The full crash set a [`FaultPlan`] implies: every node the plan
    /// crash-stops at any round ([`FaultPlan::ever_dead_in`] with an
    /// unbounded horizon — conservative even for nodes that rejoin), each
    /// carrying its downtime timeline for [`CrashSet::alive_at`].
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let mut set = Self::new();
        for v in plan.ever_dead_in(0..usize::MAX) {
            set.dead.insert(v.0);
            for (s, e) in plan.downtime(v) {
                set.downtime.push((v.0, s, e));
            }
        }
        set
    }

    /// The crash set for one *wave* of a churned run: every node whose
    /// scheduled downtime intersects the half-open round range `rounds`.
    /// A node that crashed and rejoined *before* the window is absent —
    /// re-admitted as a routing endpoint and intermediate — while a node
    /// due to be down at any point inside it is avoided throughout, so a
    /// mid-wave crash can only lose traffic the plan already reported
    /// undeliverable. Timelines are carried for [`CrashSet::alive_at`].
    pub fn from_plan_window(plan: &FaultPlan, rounds: std::ops::Range<usize>) -> Self {
        let mut set = Self::new();
        for v in plan.ever_dead_in(rounds) {
            set.dead.insert(v.0);
            for (s, e) in plan.downtime(v) {
                set.downtime.push((v.0, s, e));
            }
        }
        set
    }

    /// The crash set a live [`FaultReport`] witnessed: every node the
    /// report says crash-stopped, treated as permanently down (a report is
    /// a past-tense record; use [`CrashSet::from_plan_window`] when a
    /// schedule is available to plan re-admission ahead of time).
    pub fn from_report(report: &FaultReport) -> Self {
        report.crashed_nodes().into_iter().collect()
    }

    /// Mark `node` dead (builder form; permanent downtime).
    pub fn with(mut self, node: NodeId) -> Self {
        self.insert(node);
        self
    }

    /// Mark `node` dead, with permanent downtime.
    pub fn insert(&mut self, node: NodeId) {
        if self.dead.insert(node.0) {
            self.downtime.push((node.0, 0, usize::MAX));
        }
    }

    /// True if `node` is in the crash set.
    pub fn is_dead(&self, node: NodeId) -> bool {
        self.dead.contains(&node.0)
    }

    /// Round-addressed liveness: false exactly while one of `node`'s
    /// downtime intervals covers `round`. Nodes outside the crash set are
    /// always alive; members without a schedule never are. This is the
    /// planning-side mirror of [`FaultPlan::alive_at`].
    pub fn alive_at(&self, node: NodeId, round: usize) -> bool {
        if !self.is_dead(node) {
            return true;
        }
        !self
            .downtime
            .iter()
            .any(|&(v, s, e)| v == node.0 && s <= round && (round < e || e == usize::MAX))
    }

    /// True if no node is marked dead.
    pub fn is_empty(&self) -> bool {
        self.dead.is_empty()
    }

    /// Number of dead nodes.
    pub fn len(&self) -> usize {
        self.dead.len()
    }

    /// The dead nodes, ascending.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dead.iter().map(|&v| NodeId(v))
    }

    /// The surviving node indices among `0..n`, ascending.
    pub fn survivors(&self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(NodeId::from)
            .filter(|v| !self.is_dead(*v))
            .collect()
    }

    /// Split a demand set into the surviving part and the
    /// [`Undeliverable`] records for demands touching a dead endpoint.
    #[allow(clippy::type_complexity)]
    pub(crate) fn partition_demands(
        &self,
        demands: Vec<Vec<(NodeId, BitString)>>,
    ) -> (Vec<Vec<(NodeId, BitString)>>, Vec<Undeliverable>) {
        let mut live: Vec<Vec<(NodeId, BitString)>> = Vec::with_capacity(demands.len());
        let mut undeliverable = Vec::new();
        for (v, list) in demands.into_iter().enumerate() {
            let source = NodeId::from(v);
            let mut keep = Vec::new();
            for (destination, payload) in list {
                let reason = if self.is_dead(source) {
                    Some(DeliveryFailure::SourceCrashed)
                } else if self.is_dead(destination) {
                    Some(DeliveryFailure::DestinationCrashed)
                } else {
                    None
                };
                match reason {
                    Some(reason) => undeliverable.push(Undeliverable {
                        source,
                        destination,
                        payload,
                        reason,
                    }),
                    None => keep.push((destination, payload)),
                }
            }
            live.push(keep);
        }
        (live, undeliverable)
    }
}

impl FromIterator<NodeId> for CrashSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = Self::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl fmt::Display for CrashSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crash-set[")?;
        for (i, v) in self.dead.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Why a demand could not be routed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryFailure {
    /// The demand's source is in the crash set (checked first when both
    /// endpoints are dead).
    SourceCrashed,
    /// The demand's destination is in the crash set.
    DestinationCrashed,
}

/// One demand dropped at planning time: the payload never went on the wire
/// because an endpoint is dead. Reported instead of erroring, so callers
/// can re-plan or account for the loss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Undeliverable {
    /// The demand's origin.
    pub source: NodeId,
    /// The demand's intended recipient.
    pub destination: NodeId,
    /// The payload that was not sent.
    pub payload: BitString,
    /// Which endpoint was dead.
    pub reason: DeliveryFailure,
}

/// Outcome of a crash-aware routing phase.
#[derive(Debug)]
pub struct RoutedOutcome {
    /// Per-node deliveries: `Some` with the `(source, payload)` pairs for
    /// survivors, `None` for every node in the crash set.
    pub delivered: Vec<Option<Delivered>>,
    /// Demands dropped at planning time because an endpoint is dead.
    pub undeliverable: Vec<Undeliverable>,
    /// Accounting for the phase(s), including fault counters.
    pub stats: RunStats,
    /// Every fault the engine's plan actually applied.
    pub report: FaultReport,
}

impl RoutedOutcome {
    /// Deliveries of surviving nodes, with their ids.
    pub fn survivors(&self) -> impl Iterator<Item = (NodeId, &Delivered)> + '_ {
        self.delivered
            .iter()
            .enumerate()
            .filter_map(|(v, d)| d.as_ref().map(|d| (NodeId::from(v), d)))
    }
}

/// Route an explicit demand set around a crash set, under the engine's
/// fault plan.
///
/// Demands touching a dead endpoint are dropped at planning time and
/// reported in [`RoutedOutcome::undeliverable`]; the rest run the static
/// direct schedule of [`crate::route`] via
/// [`cliquesim::Session::run_faulted`]. Because each surviving pair uses
/// its private link, a planned crash cannot damage survivor traffic: every
/// demand between surviving endpoints is delivered. Nodes in the crash set
/// get `None` delivery slots regardless of when (or whether) the engine
/// actually kills them — the planning view is authoritative.
///
/// A node *outside* the crash set that crashes mid-phase yields
/// [`RouteError::UnplannedCrash`]; probabilistic link damage can still
/// surface as [`RouteError::Malformed`] — that tier wants
/// [`route_resilient`].
pub fn route_faulted(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
    crash: &CrashSet,
) -> Result<RoutedOutcome, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n, "one demand list per node");
    let bandwidth = session.bandwidth();

    let (live_demands, undeliverable) = crash.partition_demands(demands);
    let streams = build_streams(n, live_demands);
    let schedule = schedule_for(&streams, bandwidth);
    let programs = make_programs(n, streams, schedule);

    let outcome = session.run_faulted(programs)?;
    check_schedule(schedule, outcome.stats.rounds)?;

    let mut delivered: Vec<Option<Delivered>> = Vec::with_capacity(n);
    for (v, slot) in outcome.outputs.into_iter().enumerate() {
        if crash.is_dead(NodeId::from(v)) {
            delivered.push(None);
            continue;
        }
        match slot {
            Some(collected) => delivered.push(Some(parse_delivered(v, collected)?)),
            None => return Err(RouteError::UnplannedCrash(NodeId::from(v))),
        }
    }
    Ok(RoutedOutcome {
        delivered,
        undeliverable,
        stats: outcome.stats,
        report: outcome.faults,
    })
}

/// The retransmitting router for the lossy-link tier: each stream chunk is
/// sent `repeats` times over consecutive rounds; receivers majority-vote
/// the copies of each chunk.
struct ResilientRouterNode {
    /// Framed outgoing stream per destination.
    out_streams: Vec<BitString>,
    /// `copies[src][chunk]` = the copies of chunk `chunk` received from
    /// `src` (fewer than `repeats` if the adversary dropped some).
    copies: Vec<Vec<Vec<BitString>>>,
    /// Base schedule length in chunks.
    chunks: usize,
    repeats: usize,
}

impl NodeProgram for ResilientRouterNode {
    type Output = Vec<BitString>;

    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Vec<BitString>> {
        if round > 0 {
            let chunk = (round - 1) / self.repeats;
            for (src, msg) in inbox.iter() {
                self.copies[src.index()][chunk].push(msg.clone());
            }
        }
        if round == self.chunks * self.repeats {
            // Majority-vote each chunk and concatenate per source.
            let collected = self
                .copies
                .iter()
                .map(|chunks| {
                    let mut stream = BitString::new();
                    for copies in chunks {
                        if let Some(winner) = majority_payload(copies) {
                            stream.extend_from(&winner);
                        }
                    }
                    stream
                })
                .collect();
            return Status::Halt(collected);
        }
        let chunk = round / self.repeats;
        for dst in 0..ctx.n {
            if dst == ctx.id.index() {
                continue;
            }
            let stream = &self.out_streams[dst];
            let start = chunk * ctx.bandwidth;
            if start >= stream.len() {
                continue;
            }
            let take = ctx.bandwidth.min(stream.len() - start);
            let mut r = stream.reader();
            r.skip(start).expect("chunk start in range");
            let piece = r.read_bits(take).expect("chunk in range");
            outbox.send(NodeId::from(dst), piece);
        }
        Status::Continue
    }
}

/// Route an explicit demand set with `repeats`-fold chunk retransmission,
/// for engines whose fault plan drops or corrupts messages.
///
/// Each bandwidth-sized chunk of every stream is sent `repeats` times over
/// consecutive rounds; the receiver takes a per-chunk majority vote over
/// the copies that arrive ([`cc_resilient::majority_payload`]). A chunk
/// survives as long as intact copies outnumber corrupted ones and at least
/// one copy arrives — the same per-link guarantee as `RepeatBroadcast`, so
/// the delivery guarantee is probabilistic in the adversary's coin
/// probabilities. A chunk that loses its vote (or vanishes entirely)
/// surfaces as [`RouteError::Malformed`] at reassembly.
///
/// Costs `repeats ×` the rounds/messages/bits of [`crate::route`] on the
/// same demands — [`resilient_overhead`] prices it analytically, and the
/// fault-free run matches that price exactly.
pub fn route_resilient(
    session: &mut Session,
    demands: Vec<Vec<(NodeId, BitString)>>,
    repeats: usize,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n, "one demand list per node");
    assert!(repeats >= 1, "at least one transmission per chunk");
    let bandwidth = session.bandwidth();

    let streams = build_streams(n, demands);
    let chunks = schedule_for(&streams, bandwidth);
    let programs: Vec<ResilientRouterNode> = streams
        .into_iter()
        .map(|row| ResilientRouterNode {
            out_streams: row,
            copies: vec![vec![Vec::new(); chunks]; n],
            chunks,
            repeats,
        })
        .collect();

    let outcome = session.run_faulted(programs)?;
    check_schedule(chunks * repeats, outcome.stats.rounds)?;

    let mut result = Vec::with_capacity(n);
    for (v, slot) in outcome.outputs.into_iter().enumerate() {
        match slot {
            Some(collected) => result.push(parse_delivered(v, collected)?),
            None => return Err(RouteError::UnplannedCrash(NodeId::from(v))),
        }
    }
    Ok(result)
}

/// Analytic cost of [`route_resilient`] given the fault-free cost `base`
/// of [`crate::route`] on the same demands: every round is repeated
/// `repeats` times, so rounds, messages, and bits all scale by `repeats`
/// while per-message and peak-buffer sizes are unchanged. Suitable for
/// [`cliquesim::Session::charge`]; link faults only ever *remove* messages
/// from this bound.
pub fn resilient_overhead(base: &RunStats, repeats: usize) -> RunStats {
    RunStats {
        rounds: base.rounds * repeats,
        messages: base.messages * repeats as u64,
        bits: base.bits * repeats as u64,
        max_message_bits: base.max_message_bits,
        peak_live_payload_bytes: base.peak_live_payload_bytes,
        ..RunStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;
    use cliquesim::Engine;

    fn demands_for(n: usize) -> Vec<Vec<(NodeId, BitString)>> {
        // A deterministic all-pairs-ish pattern with varied payloads.
        let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
        for v in 0..n {
            for d in 1..3 {
                let dst = (v + d) % n;
                let payload: BitString = (0..(7 * v + 3 * d + 1)).map(|i| i % 3 == 0).collect();
                demands[v].push((NodeId::from(dst), payload));
            }
        }
        demands
    }

    #[test]
    fn crash_set_builders_agree() {
        let plan = FaultPlan::new(3).crash(NodeId(2), 1).crash(NodeId(5), 4);
        let set = CrashSet::from_plan(&plan);
        assert!(set.is_dead(NodeId(2)) && set.is_dead(NodeId(5)));
        assert!(!set.is_dead(NodeId(0)));
        assert_eq!(set.len(), 2);
        assert_eq!(set.survivors(7).len(), 5);
        assert_eq!(set.to_string(), "crash-set[2,5]");
        assert_eq!(
            CrashSet::new().with(NodeId(2)).with(NodeId(5)),
            set,
            "builder and plan-derived sets agree (equality is the dead set \
             only, never the timelines)"
        );
    }

    #[test]
    fn crash_set_is_round_aware_under_churn() {
        let plan = FaultPlan::new(0)
            .crash(NodeId(2), 3)
            .rejoin(NodeId(2), 6)
            .expect("crash precedes rejoin")
            .crash(NodeId(5), 8);
        // from_plan is conservative: the rejoiner is still a member (it is
        // unsafe for work spanning its downtime) but its timeline answers
        // round-addressed liveness.
        let set = CrashSet::from_plan(&plan);
        assert!(set.is_dead(NodeId(2)) && set.is_dead(NodeId(5)));
        assert!(set.alive_at(NodeId(2), 2));
        assert!(!set.alive_at(NodeId(2), 3));
        assert!(!set.alive_at(NodeId(2), 5));
        assert!(set.alive_at(NodeId(2), 6), "back at the rejoin round");
        assert!(!set.alive_at(NodeId(5), usize::MAX), "permanent crash");
        assert!(set.alive_at(NodeId(0), 0), "non-members are always alive");
        // Builder members have no schedule: never alive.
        let built = CrashSet::new().with(NodeId(1));
        assert!(!built.alive_at(NodeId(1), 0));
        // Windowed sets re-admit completed crash/rejoin pairs: node 2 is
        // avoided while its downtime intersects the wave and re-admitted
        // afterwards; node 5 only joins once its crash is in sight.
        let w0 = CrashSet::from_plan_window(&plan, 0..3);
        assert!(w0.is_empty(), "nothing is down in rounds 0..3: {w0}");
        let w1 = CrashSet::from_plan_window(&plan, 3..6);
        assert!(w1.is_dead(NodeId(2)) && !w1.is_dead(NodeId(5)));
        let w2 = CrashSet::from_plan_window(&plan, 6..9);
        assert!(!w2.is_dead(NodeId(2)), "rejoined before the window");
        assert!(w2.is_dead(NodeId(5)));
        // A crash-only plan windows to exactly the classic full set.
        let plain = FaultPlan::new(1).crash(NodeId(4), 2);
        assert_eq!(
            CrashSet::from_plan_window(&plain, 2..usize::MAX),
            CrashSet::from_plan(&plain)
        );
    }

    #[test]
    fn dead_endpoints_become_undeliverable_records() {
        let n = 6;
        let plan = FaultPlan::new(0).crash(NodeId(1), 1);
        let crash = CrashSet::from_plan(&plan);
        let mut session = Session::new(Engine::new(n).with_fault_plan(plan));
        let out = route_faulted(&mut session, demands_for(n), &crash).unwrap();
        assert!(out.delivered[1].is_none(), "dead node has no delivery slot");
        for u in out.undeliverable.iter() {
            assert!(u.source == NodeId(1) || u.destination == NodeId(1));
        }
        // demands_for sends 1→2, 1→3 (source dead) and 0→1, 5→1 (dest dead).
        assert_eq!(out.undeliverable.len(), 4);
        let by_source = out
            .undeliverable
            .iter()
            .filter(|u| u.reason == DeliveryFailure::SourceCrashed)
            .count();
        assert_eq!(by_source, 2);
        // Every survivor-pair demand arrives.
        for (v, d) in out.survivors() {
            let expect = demands_for(n)
                .iter()
                .enumerate()
                .flat_map(|(s, list)| {
                    list.iter()
                        .filter(|(dst, _)| *dst == v && s != 1)
                        .map(move |(_, p)| (NodeId::from(s), p.clone()))
                        .collect::<Vec<_>>()
                })
                .count();
            assert_eq!(d.len(), expect, "node {v:?} missed survivor traffic");
        }
    }

    #[test]
    fn empty_crash_set_matches_route_exactly() {
        let n = 5;
        let mut s1 = Session::new(Engine::new(n));
        let plain = route(&mut s1, demands_for(n)).unwrap();
        let mut s2 = Session::new(Engine::new(n));
        let faulted = route_faulted(&mut s2, demands_for(n), &CrashSet::new()).unwrap();
        assert!(faulted.undeliverable.is_empty());
        let unwrapped: Vec<Delivered> = faulted.delivered.into_iter().map(|d| d.unwrap()).collect();
        assert_eq!(plain, unwrapped);
        assert_eq!(s1.stats(), s2.stats(), "byte-identical wire cost");
    }

    #[test]
    fn resilient_overhead_matches_fault_free_run() {
        let n = 5;
        let repeats = 3;
        let mut s1 = Session::new(Engine::new(n));
        route(&mut s1, demands_for(n)).unwrap();
        let base = s1.stats().clone();
        let mut s2 = Session::new(Engine::new(n));
        let got = route_resilient(&mut s2, demands_for(n), repeats).unwrap();
        let analytic = resilient_overhead(&base, repeats);
        let actual = s2.stats();
        assert_eq!(actual.rounds, analytic.rounds);
        assert_eq!(actual.messages, analytic.messages);
        assert_eq!(actual.bits, analytic.bits);
        assert_eq!(actual.max_message_bits, analytic.max_message_bits);
        assert_eq!(
            actual.peak_live_payload_bytes,
            analytic.peak_live_payload_bytes
        );
        // And it delivers what route delivers.
        let mut s3 = Session::new(Engine::new(n));
        assert_eq!(got, route(&mut s3, demands_for(n)).unwrap());
    }

    #[test]
    fn resilient_survives_dropped_copies() {
        let n = 5;
        // Drop a fifth of all messages: with 5 copies per chunk no chunk
        // loses every copy at this seed, and drops cannot outvote intact
        // copies (dropped ≠ corrupted).
        let plan = FaultPlan::new(11).drop_messages(0.2);
        let mut s = Session::new(Engine::new(n).with_fault_plan(plan));
        let got = route_resilient(&mut s, demands_for(n), 5).unwrap();
        let mut clean = Session::new(Engine::new(n));
        assert_eq!(got, route(&mut clean, demands_for(n)).unwrap());
        assert!(s.stats().dropped_messages > 0, "the adversary never fired");
    }

    #[test]
    fn resilient_survives_corrupted_copies() {
        let n = 4;
        // A low corruption rate against 5 copies per chunk: intact copies
        // win every per-chunk majority at this seed.
        let plan = FaultPlan::new(7).corrupt_messages(0.1);
        let mut s = Session::new(Engine::new(n).with_fault_plan(plan));
        let got = route_resilient(&mut s, demands_for(n), 5).unwrap();
        let mut clean = Session::new(Engine::new(n));
        assert_eq!(got, route(&mut clean, demands_for(n)).unwrap());
        assert!(
            s.stats().corrupted_messages > 0,
            "the adversary never fired"
        );
    }
}
