//! Header-free ("sized") routing for patterns whose payload **sizes** are
//! global knowledge.
//!
//! [`crate::route`] frames every payload with a [`crate::LEN_HEADER_BITS`]
//! length header because receivers cannot otherwise split a link stream
//! back into payloads. But the balanced-routing legitimacy argument (see
//! [`crate::balanced`]) already assumes demand sizes are globally known —
//! either as pure functions of `n` and `k`, or *agreed in-model by a gossip
//! round*, as the sparse matrix-multiplication tier does with its
//! nonzero-count gossip. Under that assumption the headers are pure
//! overhead: every node can compute the exact split points itself.
//!
//! This module is the header-free rendering of both schedules:
//!
//! * [`route_sized`] — the direct schedule shipping raw concatenated
//!   payloads; receivers split by the globally known size list.
//! * [`route_balanced_sized`] — the two-phase balanced megastream with raw
//!   (unframed) per-destination streams; reassembly slices by layout.
//! * [`all_to_all_sized`] — broadcast collective on [`route_sized`].
//!
//! Every entry point has an **exact analytic twin** ([`route_sized_cost`],
//! [`route_balanced_sized_cost`], [`all_to_all_sized_cost`]) computing the
//! full [`RunStats`] ledger — rounds, messages, bits, max message width,
//! peak live payload bytes — from the demand sizes alone, asserted
//! field-for-field against simulation the way `dolev_strong_overhead` is.
//! The sparse matmul round-cost function is built on these twins.
//!
//! Sparse-payload caveat: a *zero-length* payload ships zero bits (and
//! zero messages) yet is still delivered — the receiver knows its size.
//! Framed routing would charge a full header for the same delivery.

use cliquesim::{BitString, NodeId, RunStats, Session};

use crate::balanced::{layout_for, missing_blob, segment_range, stitch, MegaLayout};
use crate::frames::rounds_for;
use crate::router::{check_schedule, make_programs, schedule_for, Delivered, RouteError};

/// One demand list per node, as routed by [`route_sized`].
type DemandMatrix = Vec<Vec<(NodeId, BitString)>>;

/// Demand **sizes** in the same shape as a demand matrix: per sender, the
/// `(destination, payload length in bits)` pairs in sending order. This is
/// the global knowledge the cost twins price.
pub type DemandSizes = Vec<Vec<(usize, usize)>>;

/// Extract the size shape of a demand matrix (what every node is assumed
/// to know globally).
pub fn demand_sizes(demands: &[Vec<(NodeId, BitString)>]) -> DemandSizes {
    demands
        .iter()
        .map(|list| {
            list.iter()
                .map(|(dst, payload)| (dst.index(), payload.len()))
                .collect()
        })
        .collect()
}

fn split_error(w: usize, wanted: usize, got: usize) -> RouteError {
    RouteError::Malformed(
        NodeId::from(w),
        cliquesim::DecodeError {
            at: got,
            wanted,
            len: got,
        },
    )
}

/// Route a demand set with the static direct schedule and **no frame
/// headers**: per link, payloads are concatenated raw and split back by
/// the globally known size list.
///
/// Semantics are identical to [`crate::route`] — per node, delivered
/// `(source, payload)` pairs with sources ascending and payloads per
/// source in sending order — except that zero-length payloads are also
/// delivered (for free). Only legitimate when every node knows every
/// payload's size; callers must establish that (size a pure function of
/// `n`/`k`, or agreed by a prior gossip round).
pub fn route_sized(
    session: &mut Session,
    demands: DemandMatrix,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n, "one demand list per node");
    let bandwidth = session.bandwidth();

    // Raw per-link streams plus the size lists needed to split them back.
    let mut sizes: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; n];
    let mut streams: Vec<Vec<BitString>> = vec![vec![BitString::new(); n]; n];
    for (v, list) in demands.into_iter().enumerate() {
        for (dst, payload) in list {
            assert_ne!(dst.index(), v, "demand from node {v} to itself");
            sizes[v][dst.index()].push(payload.len());
            streams[v][dst.index()].extend_from(&payload);
        }
    }

    let schedule = schedule_for(&streams, bandwidth);
    let programs = make_programs(n, streams, schedule);
    let outcome = session.run(programs)?;
    check_schedule(schedule, outcome.stats.rounds)?;

    let mut result = Vec::with_capacity(n);
    for (w, collected) in outcome.outputs.into_iter().enumerate() {
        let mut delivered: Delivered = Vec::new();
        for (src, stream) in collected.into_iter().enumerate() {
            let lens = &sizes[src][w];
            let want: usize = lens.iter().sum();
            if stream.len() != want {
                return Err(split_error(w, want, stream.len()));
            }
            let mut r = stream.reader();
            for &len in lens {
                let payload = r
                    .read_bits(len)
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                delivered.push((NodeId::from(src), payload));
            }
        }
        result.push(delivered);
    }
    Ok(result)
}

/// All-to-all broadcast on [`route_sized`]: node `v` sends `payloads[v]`
/// to everyone; returns each node's view of all `n` payloads indexed by
/// source (its own copied locally for free). Payload sizes must be global
/// knowledge.
pub fn all_to_all_sized(
    session: &mut Session,
    payloads: Vec<BitString>,
) -> Result<Vec<Vec<BitString>>, RouteError> {
    let n = session.n();
    assert_eq!(payloads.len(), n);
    let demands: DemandMatrix = payloads
        .iter()
        .enumerate()
        .map(|(v, p)| {
            (0..n)
                .filter(|&w| w != v)
                .map(|w| (NodeId::from(w), p.clone()))
                .collect()
        })
        .collect();
    let delivered = route_sized(session, demands)?;
    let mut views = Vec::with_capacity(n);
    for (v, list) in delivered.into_iter().enumerate() {
        let mut view = vec![BitString::new(); n];
        view[v] = payloads[v].clone();
        for (src, payload) in list {
            view[src.index()] = payload;
        }
        views.push(view);
    }
    Ok(views)
}

/// The sized twin of `BalancedPlan`: identical megastream geometry, but
/// per-destination streams are raw concatenations (no frame headers) and
/// reassembly splits by the recorded payload sizes instead of parsing
/// frames. Always runs over the full live set `0..n`.
struct SizedPlan {
    n: usize,
    layouts: Vec<MegaLayout>,
    megas: Vec<BitString>,
    /// `payload_sizes[u][w]`: the bit lengths of `u`'s payloads to `w`, in
    /// sending order.
    payload_sizes: Vec<Vec<Vec<usize>>>,
}

impl SizedPlan {
    fn new(n: usize, demands: DemandMatrix) -> Self {
        let mut payload_sizes: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); n]; n];
        let mut streams: Vec<Vec<BitString>> = vec![vec![BitString::new(); n]; n];
        for (u, list) in demands.into_iter().enumerate() {
            for (dst, payload) in list {
                assert_ne!(dst.index(), u, "demand from node {u} to itself");
                payload_sizes[u][dst.index()].push(payload.len());
                streams[u][dst.index()].extend_from(&payload);
            }
        }
        let layouts: Vec<MegaLayout> = streams
            .iter()
            .map(|row| layout_for(&row.iter().map(|s| s.len()).collect::<Vec<_>>()))
            .collect();
        let megas: Vec<BitString> = streams
            .iter()
            .map(|row| {
                let mut m = BitString::new();
                for s in row {
                    m.extend_from(s);
                }
                m
            })
            .collect();
        Self {
            n,
            layouts,
            megas,
            payload_sizes,
        }
    }

    /// Which node holds segment `j` of sender `u`'s megastream.
    fn intermediate_for(&self, u: usize, j: usize) -> usize {
        (j + u) % self.n
    }

    fn scatter(&self) -> (DemandMatrix, Vec<Vec<BitString>>) {
        let n = self.n;
        let mut phase1: DemandMatrix = vec![Vec::new(); n];
        let mut held: Vec<Vec<BitString>> = vec![vec![BitString::new(); n]; n];
        for u in 0..n {
            for j in 0..n {
                let (a, b) = segment_range(self.layouts[u].total, n, j);
                if a >= b {
                    continue;
                }
                let mut r = self.megas[u].reader();
                r.skip(a).expect("in range");
                let seg = r.read_bits(b - a).expect("in range");
                let p = self.intermediate_for(u, j);
                if p == u {
                    held[p][u] = seg;
                } else {
                    phase1[u].push((NodeId::from(p), seg));
                }
            }
        }
        (phase1, held)
    }

    fn slice(&self, held: &[Vec<BitString>]) -> (DemandMatrix, Vec<Vec<(usize, BitString)>>) {
        let n = self.n;
        let mut phase2: DemandMatrix = vec![Vec::new(); n];
        let mut kept: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); n];
        for p in 0..n {
            for w in 0..n {
                let mut blob = BitString::new();
                for u in 0..n {
                    // p holds segment j of u's megastream iff
                    // intermediate_for(u, j) == p, i.e. j = p - u (mod n).
                    let j = (p + n - u) % n;
                    let (sa, sb) = segment_range(self.layouts[u].total, n, j);
                    let (ra, rb) = self.layouts[u].ranges[w];
                    let (ia, ib) = (sa.max(ra), sb.min(rb));
                    if ia >= ib {
                        continue;
                    }
                    let seg = &held[p][u];
                    let mut r = seg.reader();
                    r.skip(ia - sa).expect("in range");
                    let piece = r.read_bits(ib - ia).expect("in range");
                    blob.extend_from(&piece);
                }
                if blob.is_empty() {
                    continue;
                }
                if p == w {
                    kept[w].push((p, blob));
                } else {
                    phase2[p].push((NodeId::from(w), blob));
                }
            }
        }
        (phase2, kept)
    }

    fn reassemble(
        &self,
        w: usize,
        blob_from: &[Option<BitString>],
    ) -> Result<Delivered, RouteError> {
        let n = self.n;
        let mut per_sender: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); n];
        let mut cursors: Vec<usize> = vec![0; n];
        for p in 0..n {
            for u in 0..n {
                let j = (p + n - u) % n;
                let (sa, sb) = segment_range(self.layouts[u].total, n, j);
                let (ra, rb) = self.layouts[u].ranges[w];
                let (ia, ib) = (sa.max(ra), sb.min(rb));
                if ia >= ib {
                    continue;
                }
                let blob = blob_from[p]
                    .as_ref()
                    .ok_or_else(|| RouteError::Malformed(NodeId::from(w), missing_blob(p)))?;
                let mut r = blob.reader();
                r.skip(cursors[p])
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                let piece = r
                    .read_bits(ib - ia)
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                cursors[p] += ib - ia;
                per_sender[u].push((ia, piece));
            }
        }
        // Stitch each sender's pieces and split the raw stream by the
        // known payload sizes (this is where the sized plan differs from
        // the framed one, which parses length headers instead).
        let mut delivered = Vec::new();
        for u in 0..n {
            let lens = &self.payload_sizes[u][w];
            if lens.is_empty() {
                continue;
            }
            let (ra, rb) = self.layouts[u].ranges[w];
            let stream = stitch(std::mem::take(&mut per_sender[u]), rb - ra, ra)
                .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
            let mut r = stream.reader();
            for &len in lens {
                let payload = r
                    .read_bits(len)
                    .map_err(|e| RouteError::Malformed(NodeId::from(w), e))?;
                delivered.push((NodeId::from(u), payload));
            }
        }
        Ok(delivered)
    }
}

/// The two-phase balanced megastream schedule, header-free.
///
/// Delivery semantics are identical to [`crate::route_balanced`] except
/// that zero-length payloads are also delivered (for free). Only
/// legitimate when payload sizes are global knowledge — the sparse matmul
/// tier earns this with its nonzero-count gossip.
pub fn route_balanced_sized(
    session: &mut Session,
    demands: DemandMatrix,
) -> Result<Vec<Delivered>, RouteError> {
    let n = session.n();
    assert_eq!(demands.len(), n);
    let plan = SizedPlan::new(n, demands);

    let (phase1, mut held) = plan.scatter();
    let delivered1 = route_sized(session, phase1)?;
    for (p, list) in delivered1.into_iter().enumerate() {
        for (src, seg) in list {
            held[p][src.index()] = seg;
        }
    }

    let (phase2, kept) = plan.slice(&held);
    let delivered2 = route_sized(session, phase2)?;

    let mut result: Vec<Delivered> = Vec::with_capacity(n);
    for w in 0..n {
        let mut blob_from: Vec<Option<BitString>> = vec![None; n];
        for (src, blob) in &delivered2[w] {
            blob_from[src.index()] = Some(blob.clone());
        }
        for (p, blob) in &kept[w] {
            blob_from[*p] = Some(blob.clone());
        }
        result.push(plan.reassemble(w, &blob_from)?);
    }
    Ok(result)
}

// ---------------------------------------------------------------------------
// Analytic cost twins
// ---------------------------------------------------------------------------

/// Exact [`RunStats`] of one engine run executing the direct schedule over
/// raw per-link loads `loads[v][w]` (bits, `v ≠ w`): mirrors `RouterNode`
/// chunking and the engine's `close_round` accounting bit-for-bit.
fn direct_cost_from_links(bandwidth: usize, loads: &[Vec<usize>]) -> RunStats {
    let mut stats = RunStats::default();
    let mut schedule = 0usize;
    for row in loads {
        for &len in row {
            if len == 0 {
                continue;
            }
            schedule = schedule.max(rounds_for(len, bandwidth));
            stats.messages += rounds_for(len, bandwidth) as u64;
            stats.bits += len as u64;
            stats.max_message_bits = stats.max_message_bits.max(bandwidth.min(len));
        }
    }
    stats.rounds = schedule;
    // Peak live payload: the engine tracks, per round boundary, the bits
    // still buffered from the previous round plus the bits sent this
    // round; the final (halting) round sends nothing.
    let mut prev = 0u64;
    let mut peak = 0usize;
    for r in 0..=schedule {
        let mut cur = 0u64;
        if r < schedule {
            for row in loads {
                for &len in row {
                    if len > r * bandwidth {
                        cur += bandwidth.min(len - r * bandwidth) as u64;
                    }
                }
            }
        }
        peak = peak.max(((prev + cur) as usize).div_ceil(8));
        prev = cur;
    }
    stats.peak_live_payload_bytes = peak;
    stats
}

/// Fold per-payload demand sizes into raw per-link bit loads.
fn link_loads(n: usize, sizes: &DemandSizes) -> Vec<Vec<usize>> {
    let mut loads = vec![vec![0usize; n]; n];
    for (v, list) in sizes.iter().enumerate() {
        for &(dst, len) in list {
            assert_ne!(dst, v, "demand from node {v} to itself");
            loads[v][dst] += len;
        }
    }
    loads
}

/// Analytic twin of [`route_sized`]: the exact [`RunStats`] of routing a
/// demand set with the given size shape (see [`demand_sizes`]).
pub fn route_sized_cost(n: usize, bandwidth: usize, sizes: &DemandSizes) -> RunStats {
    assert_eq!(sizes.len(), n, "one size list per node");
    direct_cost_from_links(bandwidth, &link_loads(n, sizes))
}

/// Analytic twin of [`all_to_all_sized`] for per-node payload lengths.
pub fn all_to_all_sized_cost(n: usize, bandwidth: usize, payload_lens: &[usize]) -> RunStats {
    assert_eq!(payload_lens.len(), n);
    let mut loads = vec![vec![0usize; n]; n];
    for v in 0..n {
        for w in 0..n {
            if w != v {
                loads[v][w] = payload_lens[v];
            }
        }
    }
    direct_cost_from_links(bandwidth, &loads)
}

/// Analytic twin of [`route_balanced_sized`]: prices both phases from the
/// size shape alone — megastream layouts, segment scatter, overlap slicing
/// — and combines them exactly as the session ledger does (rounds add,
/// max fields max).
pub fn route_balanced_sized_cost(n: usize, bandwidth: usize, sizes: &DemandSizes) -> RunStats {
    assert_eq!(sizes.len(), n, "one size list per node");
    // Megastream layouts from raw per-destination stream sizes.
    let mut layouts: Vec<MegaLayout> = Vec::with_capacity(n);
    for (u, list) in sizes.iter().enumerate() {
        let mut stream_sizes = vec![0usize; n];
        for &(dst, len) in list {
            assert_ne!(dst, u, "demand from node {u} to itself");
            stream_sizes[dst] += len;
        }
        layouts.push(layout_for(&stream_sizes));
    }

    // Phase 1: scatter megastream segments (segment j of u → (j + u) % n;
    // the j = 0 segment stays local and is free).
    let mut loads1 = vec![vec![0usize; n]; n];
    for u in 0..n {
        for j in 0..n {
            let (a, b) = segment_range(layouts[u].total, n, j);
            if a >= b {
                continue;
            }
            let p = (j + u) % n;
            if p != u {
                loads1[u][p] += b - a;
            }
        }
    }

    // Phase 2: slice held segments by destination range overlap.
    let mut loads2 = vec![vec![0usize; n]; n];
    for p in 0..n {
        for w in 0..n {
            if p == w {
                continue;
            }
            for u in 0..n {
                let j = (p + n - u) % n;
                let (sa, sb) = segment_range(layouts[u].total, n, j);
                let (ra, rb) = layouts[u].ranges[w];
                let (ia, ib) = (sa.max(ra), sb.min(rb));
                if ia < ib {
                    loads2[p][w] += ib - ia;
                }
            }
        }
    }

    let mut stats = direct_cost_from_links(bandwidth, &loads1);
    stats.absorb(&direct_cost_from_links(bandwidth, &loads2));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route;
    use crate::{all_to_all_broadcast, route_balanced};
    use cliquesim::Engine;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    fn normalise(d: Vec<Delivered>) -> Vec<Vec<(usize, Vec<bool>)>> {
        d.into_iter()
            .map(|list| {
                let mut v: Vec<(usize, Vec<bool>)> = list
                    .into_iter()
                    .map(|(s, p)| (s.index(), p.iter().collect()))
                    .collect();
                v.sort();
                v
            })
            .collect()
    }

    fn random_demands(n: usize, seed: u64, max_len: usize) -> DemandMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut demands: DemandMatrix = vec![Vec::new(); n];
        for v in 0..n {
            for _ in 0..rng.gen_range(0..4) {
                let dst = (v + rng.gen_range(1..n)) % n;
                let len = rng.gen_range(0..max_len);
                let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                demands[v].push((NodeId::from(dst), payload));
            }
        }
        demands
    }

    #[test]
    fn sized_matches_framed_deliveries() {
        let n = 6;
        for seed in 0..8 {
            let mut s1 = session(n);
            let framed = route(&mut s1, random_demands(n, seed, 30)).unwrap();
            let mut s2 = session(n);
            let sized = route_sized(&mut s2, random_demands(n, seed, 30)).unwrap();
            assert_eq!(normalise(framed), normalise(sized), "seed {seed}");
            assert!(
                s2.stats().bits <= s1.stats().bits,
                "seed {seed}: sized shipped more bits than framed"
            );
        }
    }

    #[test]
    fn sized_is_strictly_cheaper_when_demands_exist() {
        // Every payload saves exactly LEN_HEADER_BITS on the wire.
        let n = 5;
        let demands = random_demands(n, 3, 40);
        let payloads: u64 = demands.iter().map(|l| l.len() as u64).sum();
        assert!(payloads > 0, "seed produced no demands");
        let mut s1 = session(n);
        route(&mut s1, demands.clone()).unwrap();
        let mut s2 = session(n);
        route_sized(&mut s2, demands).unwrap();
        assert_eq!(
            s2.stats().bits + payloads * crate::LEN_HEADER_BITS as u64,
            s1.stats().bits
        );
        assert!(s2.stats().rounds <= s1.stats().rounds);
    }

    #[test]
    fn empty_payloads_are_delivered_for_free() {
        let n = 4;
        let mut demands: DemandMatrix = vec![Vec::new(); n];
        demands[1].push((NodeId::from(3), BitString::new()));
        demands[2].push((NodeId::from(0), BitString::from_bits([true, true])));
        let mut s = session(n);
        let got = route_sized(&mut s, demands).unwrap();
        assert_eq!(got[3], vec![(NodeId::from(1), BitString::new())]);
        assert_eq!(got[0].len(), 1);
        // The empty payload contributed no bits and no messages.
        assert_eq!(s.stats().bits, 2);
        assert_eq!(s.stats().messages, 1);
    }

    #[test]
    fn balanced_sized_matches_framed_balanced_deliveries() {
        for n in [4usize, 6, 9] {
            for seed in 0..4 {
                let mut s1 = session(n);
                let framed = route_balanced(&mut s1, random_demands(n, seed, 50)).unwrap();
                let mut s2 = session(n);
                let sized = route_balanced_sized(&mut s2, random_demands(n, seed, 50)).unwrap();
                // Framed balanced parses empty payloads out of headers too,
                // so deliveries agree exactly.
                assert_eq!(normalise(framed), normalise(sized), "n={n} seed {seed}");
                assert!(s2.stats().bits <= s1.stats().bits, "n={n} seed {seed}");
            }
        }
    }

    #[test]
    fn all_to_all_sized_matches_framed_views() {
        let n = 5;
        let payloads: Vec<BitString> = (0..n)
            .map(|v| BitString::from_bits((0..3 * v).map(|i| i % 2 == 0)))
            .collect();
        let mut s1 = session(n);
        let framed = all_to_all_broadcast(&mut s1, payloads.clone()).unwrap();
        let mut s2 = session(n);
        let sized = all_to_all_sized(&mut s2, payloads.clone()).unwrap();
        assert_eq!(framed, sized);
        assert!(s2.stats().bits < s1.stats().bits);
        let analytic = all_to_all_sized_cost(
            n,
            s2.bandwidth(),
            &payloads.iter().map(|p| p.len()).collect::<Vec<_>>(),
        );
        assert_eq!(analytic, s2.stats(), "analytic twin diverges");
    }

    #[test]
    fn cost_twin_matches_direct_simulation_exactly() {
        for n in [2usize, 4, 7] {
            for seed in 0..6 {
                let demands = random_demands(n, seed * 11 + n as u64, 70);
                let sizes = demand_sizes(&demands);
                let mut s = session(n);
                route_sized(&mut s, demands).unwrap();
                let analytic = route_sized_cost(n, s.bandwidth(), &sizes);
                assert_eq!(analytic, s.stats(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn cost_twin_matches_balanced_simulation_exactly() {
        for n in [3usize, 5, 8] {
            for seed in 0..6 {
                let demands = random_demands(n, seed * 7 + n as u64, 90);
                let sizes = demand_sizes(&demands);
                let mut s = session(n);
                route_balanced_sized(&mut s, demands).unwrap();
                let analytic = route_balanced_sized_cost(n, s.bandwidth(), &sizes);
                assert_eq!(analytic, s.stats(), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn empty_demand_set_costs_nothing() {
        let n = 5;
        let mut s = session(n);
        let got = route_balanced_sized(&mut s, vec![Vec::new(); n]).unwrap();
        assert!(got.iter().all(|d| d.is_empty()));
        assert_eq!(s.stats().rounds, 0);
        let analytic = route_balanced_sized_cost(n, s.bandwidth(), &vec![Vec::new(); n]);
        assert_eq!(analytic, s.stats());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_sized_delivers_and_prices_exactly(seed in any::<u64>()) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2..8);
            let demands = random_demands(n, seed.wrapping_add(1), 60);
            let sizes = demand_sizes(&demands);

            // Deliveries match the framed direct route (the semantics
            // oracle), modulo empty payloads being free either way.
            let mut s1 = session(n);
            let framed = route(&mut s1, demands.clone()).unwrap();
            let mut s2 = session(n);
            let sized = route_sized(&mut s2, demands.clone()).unwrap();
            prop_assert_eq!(normalise(framed), normalise(sized));

            // Both cost twins are exact.
            let direct = route_sized_cost(n, s2.bandwidth(), &sizes);
            prop_assert_eq!(direct, s2.stats());
            let mut s3 = session(n);
            route_balanced_sized(&mut s3, demands).unwrap();
            let balanced = route_balanced_sized_cost(n, s3.bandwidth(), &sizes);
            prop_assert_eq!(balanced, s3.stats());
        }
    }
}
