//! Centralized reference oracles.
//!
//! Each `judge_*` function re-derives the correct answer from scratch —
//! independently of the algorithm crates — and panics with the instance
//! label (which embeds the reproducing seed) on any mismatch. Protocol
//! outputs are judged, never trusted: even a `None`/"no witness" answer
//! is checked against brute force where feasible.

use cc_graph::{reference, DistMatrix, Graph, WeightedGraph, INF};
use cliquesim::RunStats;
use std::fmt::Debug;

/// Judge a matrix product `got = a · b` over an arbitrary semiring given
/// by `zero`/`add`/`mul` closures (kept independent of `cc-matmul`'s
/// `Semiring` trait on purpose — the oracle must not share code with the
/// system under test).
pub fn judge_matmul<E: Clone + PartialEq + Debug>(
    label: &str,
    a: &[Vec<E>],
    b: &[Vec<E>],
    got: &[Vec<E>],
    zero: E,
    add: impl Fn(&E, &E) -> E,
    mul: impl Fn(&E, &E) -> E,
) {
    let n = a.len();
    assert_eq!(got.len(), n, "{label}: product has wrong row count");
    for i in 0..n {
        assert_eq!(got[i].len(), n, "{label}: product row {i} has wrong length");
        for j in 0..n {
            let mut acc = zero.clone();
            for (k, aik) in a[i].iter().enumerate() {
                acc = add(&acc, &mul(aik, &b[k][j]));
            }
            assert!(
                got[i][j] == acc,
                "{label}: matmul mismatch at ({i},{j}): got {:?}, oracle {:?}",
                got[i][j],
                acc
            );
        }
    }
}

/// Judge an all-pairs shortest-path matrix against Floyd–Warshall.
pub fn judge_apsp(label: &str, g: &WeightedGraph, got: &DistMatrix) {
    let want = reference::floyd_warshall(g);
    let n = g.n();
    for u in 0..n {
        for v in 0..n {
            assert!(
                got.get(u, v) == want.get(u, v),
                "{label}: apsp mismatch at ({u},{v}): got {}, oracle {}",
                got.get(u, v),
                want.get(u, v)
            );
        }
    }
}

/// Judge single-source BFS distances.
pub fn judge_bfs(label: &str, g: &Graph, src: usize, got: &[u64]) {
    let want = reference::bfs_distances(g, src);
    assert!(
        got == want.as_slice(),
        "{label}: bfs from {src} mismatch: got {got:?}, oracle {want:?}"
    );
}

/// Judge single-source shortest paths against Dijkstra.
pub fn judge_sssp(label: &str, g: &WeightedGraph, src: usize, got: &[u64]) {
    let want = reference::dijkstra(g, src);
    assert!(
        got == want.as_slice(),
        "{label}: sssp from {src} mismatch: got {got:?}, oracle {want:?}"
    );
}

/// Judge a reachability (transitive-closure) matrix. In an undirected
/// graph, reachability is exactly component membership.
pub fn judge_reachability(label: &str, g: &Graph, got: &[Vec<bool>]) {
    let comp = reference::components(g);
    let n = g.n();
    assert_eq!(got.len(), n, "{label}: closure has wrong row count");
    for u in 0..n {
        for v in 0..n {
            let want = comp[u] == comp[v];
            assert!(
                got[u][v] == want,
                "{label}: reachability mismatch at ({u},{v}): got {}, oracle {}",
                got[u][v],
                want
            );
        }
    }
}

/// Minimum-spanning-forest weight by Kruskal (independent of `cc-mst`'s
/// Borůvka implementation).
pub fn kruskal_weight(g: &WeightedGraph) -> u64 {
    let n = g.n();
    let mut edges: Vec<(u64, usize, usize)> = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if g.has_edge(u, v) {
                edges.push((g.weight(u, v), u, v));
            }
        }
    }
    edges.sort_unstable();
    let mut dsu: Vec<usize> = (0..n).collect();
    fn find(dsu: &mut [usize], mut x: usize) -> usize {
        while dsu[x] != x {
            dsu[x] = dsu[dsu[x]];
            x = dsu[x];
        }
        x
    }
    let mut total = 0;
    for (w, u, v) in edges {
        let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
        if ru != rv {
            dsu[ru] = rv;
            total += w;
        }
    }
    total
}

/// Judge a claimed minimum spanning forest: every edge must exist with
/// its declared weight, the edge set must be acyclic, it must span each
/// connected component, and its total weight must match Kruskal's.
pub fn judge_spanning_forest(label: &str, g: &WeightedGraph, forest: &[(usize, usize, u64)]) {
    let n = g.n();
    let mut dsu: Vec<usize> = (0..n).collect();
    fn find(dsu: &mut [usize], mut x: usize) -> usize {
        while dsu[x] != x {
            dsu[x] = dsu[dsu[x]];
            x = dsu[x];
        }
        x
    }
    let mut total = 0u64;
    for &(u, v, w) in forest {
        assert!(
            g.has_edge(u, v),
            "{label}: forest edge ({u},{v}) not in the graph"
        );
        assert!(
            g.weight(u, v) == w,
            "{label}: forest edge ({u},{v}) claims weight {w}, graph says {}",
            g.weight(u, v)
        );
        let (ru, rv) = (find(&mut dsu, u), find(&mut dsu, v));
        assert!(ru != rv, "{label}: forest edge ({u},{v}) closes a cycle");
        dsu[ru] = rv;
        total += w;
    }
    // Spanning: u ~ v in the forest iff u ~ v in the graph.
    let comp = reference::components(&g.skeleton());
    for u in 0..n {
        for v in (u + 1)..n {
            let same_graph = comp[u] == comp[v];
            let same_forest = find(&mut dsu, u) == find(&mut dsu, v);
            assert!(
                same_graph == same_forest,
                "{label}: forest does not span: vertices {u},{v} \
                 connected in graph: {same_graph}, in forest: {same_forest}"
            );
        }
    }
    let want = kruskal_weight(g);
    assert!(
        total == want,
        "{label}: forest weight {total} ≠ minimum {want}"
    );
}

/// Judge a triangle count.
pub fn judge_triangle_count(label: &str, g: &Graph, got: u64) {
    let want = reference::count_triangles(g);
    assert!(
        got == want,
        "{label}: triangle count mismatch: got {got}, oracle {want}"
    );
}

/// Judge a k-clique detection answer. `Some(w)` must be a genuine
/// k-clique; `None` is checked against brute force.
pub fn judge_clique_witness(label: &str, g: &Graph, k: usize, got: &Option<Vec<usize>>) {
    match got {
        Some(w) => {
            assert!(
                w.len() == k && reference::is_clique(g, w),
                "{label}: claimed {k}-clique {w:?} is not one"
            );
        }
        None => assert!(
            reference::find_clique(g, k).is_none(),
            "{label}: protocol missed an existing {k}-clique"
        ),
    }
}

/// Judge a k-independent-set detection answer.
pub fn judge_independent_set_witness(label: &str, g: &Graph, k: usize, got: &Option<Vec<usize>>) {
    match got {
        Some(w) => {
            assert!(
                w.len() == k && reference::is_independent_set(g, w),
                "{label}: claimed independent set {w:?} of size {k} is not one"
            );
        }
        None => assert!(
            reference::find_independent_set(g, k).is_none(),
            "{label}: protocol missed an independent set of size {k}"
        ),
    }
}

/// Judge a parameterized vertex-cover answer (Theorem 11 kernel): a
/// `Some` cover must be valid and within budget `k`; a `None` must mean
/// the true minimum exceeds `k`.
pub fn judge_vertex_cover(label: &str, g: &Graph, k: usize, got: &Option<Vec<usize>>) {
    match got {
        Some(cover) => {
            assert!(
                cover.len() <= k,
                "{label}: cover {cover:?} exceeds budget k={k}"
            );
            assert!(
                reference::is_vertex_cover(g, cover),
                "{label}: claimed cover {cover:?} leaves an edge uncovered"
            );
        }
        None => {
            let min = reference::min_vertex_cover_size(g);
            assert!(
                min > k,
                "{label}: protocol said no cover ≤ {k}, but minimum is {min}"
            );
        }
    }
}

/// Judge a parameterized dominating-set answer (Theorem 9).
pub fn judge_dominating_set(label: &str, g: &Graph, k: usize, got: &Option<Vec<usize>>) {
    match got {
        Some(ds) => {
            assert!(ds.len() <= k, "{label}: dominating set exceeds budget {k}");
            assert!(
                reference::is_dominating_set(g, ds),
                "{label}: claimed dominating set {ds:?} does not dominate"
            );
        }
        None => assert!(
            reference::find_dominating_set(g, k).is_none(),
            "{label}: protocol missed a dominating set of size ≤ {k}"
        ),
    }
}

/// Judge a boolean decision against a brute-force verdict.
pub fn judge_decision(label: &str, what: &str, got: bool, want: bool) {
    assert!(
        got == want,
        "{label}: {what} decided {got}, oracle says {want}"
    );
}

/// Assert a theorem-declared round bound on accumulated stats.
pub fn assert_round_bound(label: &str, stats: &RunStats, bound: usize) {
    assert!(
        stats.rounds <= bound,
        "{label}: used {} rounds, theorem bound is {bound}",
        stats.rounds
    );
}

/// Assert the recorded per-message maximum respects a bandwidth budget.
pub fn assert_bandwidth(label: &str, stats: &RunStats, budget_bits: usize) {
    assert!(
        stats.max_message_bits <= budget_bits,
        "{label}: a {}-bit message exceeds the {budget_bits}-bit budget",
        stats.max_message_bits
    );
}

/// `INF` distances must round-trip unchanged; helper for path oracles.
pub fn is_unreachable(d: u64) -> bool {
    d >= INF
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::{Family, Instance, WeightedFamily, WeightedInstance};

    #[test]
    fn kruskal_matches_known_values() {
        // Weighted cycle 1..=n: MST drops the heaviest edge (weight n).
        let wg = WeightedInstance::new(WeightedFamily::WeightedCycle, 6, 0).graph();
        let all: u64 = (1..=6).sum();
        assert_eq!(kruskal_weight(&wg), all - 6);
    }

    #[test]
    #[should_panic(expected = "closes a cycle")]
    fn forest_judge_rejects_cycles() {
        let wg = WeightedInstance::new(WeightedFamily::WeightedCycle, 4, 0).graph();
        let forest: Vec<(usize, usize, u64)> = vec![(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4)];
        judge_spanning_forest("cycle-test", &wg, &forest);
    }

    #[test]
    #[should_panic(expected = "does not span")]
    fn forest_judge_rejects_non_spanning() {
        let wg = WeightedInstance::new(WeightedFamily::WeightedCycle, 4, 0).graph();
        judge_spanning_forest("span-test", &wg, &[(0, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "seed=7")]
    fn failure_messages_carry_the_seed() {
        let inst = Instance::new(Family::Complete, 5, 7);
        // A complete graph on 5 vertices has 10 triangles, not 0.
        judge_triangle_count(&inst.label(), &inst.graph(), 0);
    }

    #[test]
    fn witness_judges_accept_brute_force_answers() {
        let inst = Instance::new(Family::PlantedClique, 12, 3);
        let g = inst.graph();
        judge_clique_witness(&inst.label(), &g, 3, &reference::find_clique(&g, 3));
        judge_independent_set_witness(
            &inst.label(),
            &g,
            2,
            &reference::find_independent_set(&g, 2),
        );
        judge_vertex_cover(
            &inst.label(),
            &g,
            g.n(),
            &reference::find_vertex_cover(&g, g.n()),
        );
        judge_dominating_set(&inst.label(), &g, 4, &reference::find_dominating_set(&g, 4));
    }

    #[test]
    fn matmul_judge_accepts_a_correct_boolean_product() {
        let a = vec![vec![true, false], vec![false, true]];
        let b = vec![vec![false, true], vec![true, false]];
        // Identity-ish permutation product computed by hand.
        let c = vec![vec![false, true], vec![true, false]];
        judge_matmul("hand", &a, &b, &c, false, |x, y| *x || *y, |x, y| *x && *y);
    }
}
