//! Certificate-corruption harness for NCLIQUE verifiers.
//!
//! The paper's verifiers are *sound*: no certificate makes a node accept a
//! wrong claim. The adversary this module wires up is weaker than a fully
//! adversarial prover but far more mechanical: take the **honest** prover's
//! certificate on a planted yes-instance, flip 1–3 bits, and demand the
//! verifier notice. A verifier that shrugs off damaged certificates is
//! either ignoring its labels or under-checking them — exactly the class of
//! bug differential runs cannot see, because honest runs never exercise the
//! reject path near an accepting certificate.
//!
//! A corrupted certificate is occasionally a *legitimate alternate witness*
//! (flip an unused tie-break bit and a matching certificate may still
//! match); the harness therefore takes a problem-specific `witness_ok`
//! predicate that re-judges accepted mutants against ground truth. Pass
//! `|_| false` when no corruption of the honest certificate can remain
//! valid (the common case at harness-chosen instance sizes).
//!
//! Every failure names a replayable label,
//! `cert-corrupt[problem=…, instance=…, trial=…]` — the corruption is a
//! pure function of the honest certificate and the trial number.

use cc_core::{verify, Labelling, NondetProblem};
use cc_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Flip 1–3 distinct bits of `z`, chosen by a ChaCha stream keyed on
/// `seed`. Returns the damaged labelling and the flipped `(node, bit)`
/// positions. Panics if `z` has no bits to flip.
pub fn corrupt_labelling(z: &Labelling, seed: u64) -> (Labelling, Vec<(usize, usize)>) {
    let total = z.total_bits();
    assert!(total > 0, "cannot corrupt an empty labelling");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let k = (1 + rng.gen_range(0..3usize)).min(total);
    let mut picks: Vec<usize> = Vec::with_capacity(k);
    while picks.len() < k {
        let p = rng.gen_range(0..total);
        if !picks.contains(&p) {
            picks.push(p);
        }
    }
    let mut damaged = z.clone();
    let mut flips = Vec::with_capacity(k);
    for global in picks {
        // Map the global bit index to (node, bit) through the per-node
        // label lengths.
        let mut rest = global;
        let (node, bit) =
            z.0.iter()
                .enumerate()
                .find_map(|(v, b)| {
                    if rest < b.len() {
                        Some((v, rest))
                    } else {
                        rest -= b.len();
                        None
                    }
                })
                .expect("global index is < total_bits");
        let b = &mut damaged.0[node];
        b.set(bit, !b.get(bit));
        flips.push((node, bit));
    }
    flips.sort_unstable();
    (damaged, flips)
}

/// Corrupt the honest certificate `trials` times on a planted yes-instance
/// and assert the verifier rejects every mutant — except those `witness_ok`
/// confirms as legitimate alternate witnesses. Panics (with the replayable
/// `cert-corrupt[…]` label) when the verifier accepts a mutant that is not
/// a witness, when the prover fails on the instance, or when the honest
/// certificate itself is rejected.
pub fn assert_corrupted_certificates_rejected<P, W>(
    problem: &P,
    g: &Graph,
    instance_label: &str,
    trials: usize,
    mut witness_ok: W,
) where
    P: NondetProblem + ?Sized,
    W: FnMut(&Labelling) -> bool,
{
    let name = problem.name();
    let honest = problem.prove(g).unwrap_or_else(|| {
        panic!("cert-corrupt[problem={name}, instance={instance_label}]: prover produced no certificate — pick a yes-instance")
    });
    assert!(
        honest.total_bits() > 0,
        "cert-corrupt[problem={name}, instance={instance_label}]: certificate has no bits to corrupt — pick a larger instance"
    );
    let baseline = verify(problem, g, &honest).unwrap_or_else(|e| {
        panic!("cert-corrupt[problem={name}, instance={instance_label}]: engine error: {e}")
    });
    assert!(
        baseline.accepted,
        "cert-corrupt[problem={name}, instance={instance_label}]: honest certificate rejected — instance is unusable"
    );
    for trial in 0..trials {
        let label =
            format!("cert-corrupt[problem={name}, instance={instance_label}, trial={trial}]");
        let (damaged, flips) = corrupt_labelling(&honest, trial as u64);
        let verdict =
            verify(problem, g, &damaged).unwrap_or_else(|e| panic!("{label}: engine error: {e}"));
        if verdict.accepted && !witness_ok(&damaged) {
            panic!("{label}: verifier accepted a corrupted certificate (flipped bits {flips:?})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::{BoolNode, KColoring};
    use cliquesim::{BitString, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};

    #[test]
    fn corruption_is_deterministic_and_in_range() {
        let z = Labelling(vec![
            BitString::from_bits([true, false, true]),
            BitString::new(),
            BitString::from_bits([false, false]),
        ]);
        let (a, flips_a) = corrupt_labelling(&z, 9);
        let (b, flips_b) = corrupt_labelling(&z, 9);
        assert_eq!(a, b, "same seed, same damage");
        assert_eq!(flips_a, flips_b);
        assert!((1..=3).contains(&flips_a.len()));
        for &(node, bit) in &flips_a {
            assert_ne!(node, 1, "node 1 has no bits");
            assert!(bit < z.0[node].len());
            assert_ne!(a.0[node].get(bit), z.0[node].get(bit), "bit really flipped");
        }
        let (c, _) = corrupt_labelling(&z, 10);
        assert_ne!(a, c, "different seeds should damage differently");
    }

    #[test]
    fn two_colouring_rejects_every_corruption() {
        // On an even cycle the only proper 2-colourings are the honest one
        // and its global complement; flipping 1–3 of 6 bits reaches neither.
        let g = cc_graph::gen::cycle(6);
        assert_corrupted_certificates_rejected(&KColoring { k: 2 }, &g, "cycle[n=6]", 32, |_| {
            false
        });
    }

    /// A deliberately unsound toy verifier that ignores its label — the
    /// harness must flag it (and `witness_ok` must be able to excuse it).
    struct IgnoresLabels;

    struct YesNode;
    impl NodeProgram for YesNode {
        type Output = bool;
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            _round: usize,
            _inbox: &Inbox<'_>,
            _outbox: &mut Outbox<'_>,
        ) -> Status<bool> {
            Status::Halt(true)
        }
    }

    impl NondetProblem for IgnoresLabels {
        fn name(&self) -> String {
            "ignores-labels".into()
        }
        fn contains(&self, _g: &Graph) -> bool {
            true
        }
        fn label_size(&self, _n: usize) -> usize {
            2
        }
        fn time_bound(&self, _n: usize) -> usize {
            1
        }
        fn prove(&self, g: &Graph) -> Option<Labelling> {
            Some(Labelling(vec![BitString::from_bits([true, true]); g.n()]))
        }
        fn verifier_node(
            &self,
            _n: usize,
            _v: NodeId,
            _row: &BitString,
            _label: &BitString,
        ) -> BoolNode {
            Box::new(YesNode)
        }
    }

    #[test]
    #[should_panic(expected = "cert-corrupt[problem=ignores-labels, instance=toy, trial=0]")]
    fn label_ignoring_verifiers_are_flagged() {
        let g = cc_graph::gen::path(3);
        assert_corrupted_certificates_rejected(&IgnoresLabels, &g, "toy", 4, |_| false);
    }

    #[test]
    fn witness_ok_excuses_legitimate_alternates() {
        let g = cc_graph::gen::path(3);
        assert_corrupted_certificates_rejected(&IgnoresLabels, &g, "toy", 4, |_| true);
    }
}
