//! Fault-conformance differentials: the [`FaultPlan`] adversary must be a
//! pure function of `(seed, round, from, to)`, so a faulted run is just as
//! schedule-independent as a fault-free one. This module turns that into a
//! standing obligation: the same plan, replayed under every pool shape in
//! [`POOL_SHAPES`] and every delivery backend in [`BACKENDS`], must yield
//! byte-identical outputs, [`RunStats`], transcripts, *and* the same
//! [`FaultReport`] event for event.
//!
//! Every panic message carries the plan's [`FaultPlan::label`] (e.g.
//! `plan[seed=7, crashes=1, drop=0.25]`) next to the protocol label, so a
//! failing conformance run names the exact adversary that reproduces it.

use cliquesim::{Engine, FaultPlan, FaultReport, NodeProgram, RunStats, Transcript};
use std::fmt::Debug;

use crate::differential::{BACKENDS, POOL_SHAPES};

/// Everything a faulted differential compares: per-node outputs (`None`
/// for crashed nodes), accumulated stats, full transcripts, and the
/// adversary's event log.
pub type FaultedRun<T> = (Vec<Option<T>>, RunStats, Vec<Transcript>, FaultReport);

/// Run node programs under `plan` on every pool shape with transcripts
/// forced on, asserting byte-identical outputs, stats, transcripts, and
/// fault reports. Returns the sequential run for further auditing.
///
/// The factory is called once per shape and must produce identical
/// programs each time (pass a fixed seed in, like
/// [`crate::differential_programs`]).
pub fn differential_faulted<P, M>(
    label: &str,
    base: &Engine,
    plan: &FaultPlan,
    mut make_programs: M,
) -> FaultedRun<P::Output>
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    let mut reference: Option<FaultedRun<P::Output>> = None;
    for &mode in BACKENDS.iter() {
        for &threads in POOL_SHAPES.iter() {
            let tag = format!("{label}@{} under {plan}", mode.tag());
            let engine = base
                .clone()
                .with_transcripts(true)
                .with_threads_exact(threads)
                .with_delivery(mode)
                .with_fault_plan(plan.clone());
            let out = engine
                .run_faulted(make_programs())
                .unwrap_or_else(|e| panic!("{tag}: engine error at threads={threads}: {e}"));
            let transcripts = out.transcripts.expect("transcripts were requested");
            match &reference {
                None => reference = Some((out.outputs, out.stats, transcripts, out.faults)),
                Some((out0, stats0, tr0, faults0)) => {
                    assert!(
                        *out0 == out.outputs,
                        "{tag}: outputs diverge at threads={threads}"
                    );
                    assert!(
                        *stats0 == out.stats,
                        "{tag}: RunStats diverge at threads={threads}: {:?} vs {stats0:?}",
                        out.stats
                    );
                    assert!(
                        *faults0 == out.faults,
                        "{tag}: fault reports diverge at threads={threads}: {:?} vs {faults0:?}",
                        out.faults
                    );
                    assert!(
                        *tr0 == transcripts,
                        "{tag}: transcripts diverge at threads={threads}"
                    );
                }
            }
        }
    }
    reference.expect("BACKENDS and POOL_SHAPES are non-empty")
}

/// Assert the engine's transparency guarantee: attaching an *empty*
/// [`FaultPlan`] changes nothing. Runs the programs once with no plan and
/// once with `FaultPlan::new(seed)` (every probability zero, no crashes,
/// no forced faults) on every pool shape, and requires byte-identical
/// outputs, stats, and transcripts — plus an empty fault report.
pub fn assert_empty_plan_transparent<P, M>(label: &str, base: &Engine, mut make_programs: M)
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    let plan = FaultPlan::new(0);
    assert!(plan.is_empty(), "FaultPlan::new must start empty");
    for &threads in POOL_SHAPES.iter() {
        let bare = base
            .clone()
            .with_transcripts(true)
            .with_threads_exact(threads)
            .run(make_programs())
            .unwrap_or_else(|e| panic!("{label}: bare engine error at threads={threads}: {e}"));
        let planned = base
            .clone()
            .with_transcripts(true)
            .with_threads_exact(threads)
            .with_fault_plan(plan.clone())
            .run(make_programs())
            .unwrap_or_else(|e| {
                panic!("{label}: empty-plan engine error at threads={threads}: {e}")
            });
        assert!(
            planned.faults.is_empty(),
            "{label}: empty plan produced fault events at threads={threads}"
        );
        assert!(
            bare.outputs == planned.outputs,
            "{label}: empty plan changed outputs at threads={threads}"
        );
        assert!(
            bare.stats == planned.stats,
            "{label}: empty plan changed RunStats at threads={threads}: {:?} vs {:?}",
            planned.stats,
            bare.stats
        );
        assert!(
            bare.transcripts == planned.transcripts,
            "{label}: empty plan changed transcripts at threads={threads}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{BitString, Inbox, NodeCtx, NodeId, Outbox, Status};

    /// Three rounds of id gossip: every node tracks the multiset of ids it
    /// has heard (order-sensitive enough to notice any nondeterminism).
    #[derive(Clone)]
    struct Gossip {
        heard: Vec<u64>,
    }

    impl NodeProgram for Gossip {
        type Output = Vec<u64>;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<Vec<u64>> {
            for (u, m) in inbox.iter() {
                if let Ok(v) = m.reader().read_uint(ctx.id_width()) {
                    self.heard.push(u.0 as u64 * 1000 + v);
                }
            }
            if round < 3 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                outbox.broadcast(&m);
                return Status::Continue;
            }
            Status::Halt(self.heard.clone())
        }
    }

    fn gossip(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { heard: Vec::new() }).collect()
    }

    #[test]
    fn faulted_differential_is_stable_across_shapes() {
        // n = 15 ≥ 2·7, so the 7-worker pooled path really engages.
        let n = 15;
        let plan = FaultPlan::new(42)
            .crash(NodeId(3), 2)
            .drop_messages(0.2)
            .corrupt_messages(0.1)
            .truncate_messages(0.05);
        let (outputs, stats, transcripts, faults) =
            differential_faulted("gossip", &Engine::new(n), &plan, || gossip(n));
        assert!(outputs[3].is_none(), "crashed node has no output");
        assert_eq!(stats.dead_nodes, 1);
        assert!(stats.dropped_messages > 0, "seed 42 must drop something");
        assert!(!faults.is_empty());
        assert_eq!(transcripts.len(), n);
    }

    #[test]
    fn empty_plan_is_transparent_for_gossip() {
        let n = 10;
        assert_empty_plan_transparent("gossip", &Engine::new(n), || gossip(n));
    }
}
