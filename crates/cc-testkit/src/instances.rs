//! Seed-addressed instance families.
//!
//! An [`Instance`] is a pure function of `(family, n, seed)`: the same
//! triple always yields the same graph, on every host, so a failing test
//! that prints its [`Instance::label`] is reproducible from that line
//! alone. Families cover the regimes the paper's algorithms care about:
//! Erdős–Rényi at three densities, bounded-degeneracy graphs (sparse but
//! adversarially ordered), planted subgraphs (so decision protocols see
//! positive instances), and degenerate worst cases (empty, complete,
//! star, path, cycle, disjoint cliques) that stress boundary logic.

use cc_graph::{gen, Graph, WeightedGraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Unweighted instance families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// G(n, p) with expected degree ≈ 1.5 (subcritical / forest-like).
    ErSparse,
    /// G(n, 0.3).
    ErMedium,
    /// G(n, 0.7).
    ErDense,
    /// Random graph of degeneracy ≤ 3: each vertex attaches to at most 3
    /// randomly chosen earlier vertices in a random insertion order.
    BoundedDegeneracy,
    /// G(n, 0.2) with a clique of size `max(3, n/3)` planted on random
    /// vertices.
    PlantedClique,
    /// G(n, 0.4) with an independent set of size `max(2, n/3)` planted.
    PlantedIndependentSet,
    /// No edges.
    Empty,
    /// All edges.
    Complete,
    /// Vertex 0 adjacent to everything else.
    Star,
    /// A simple path 0–1–…–(n−1).
    Path,
    /// A simple cycle (a path for n < 3).
    Cycle,
    /// Two disjoint cliques of balanced sizes (disconnected).
    TwoCliques,
}

impl Family {
    /// Every unweighted family, in a fixed order.
    pub const ALL: [Family; 12] = [
        Family::ErSparse,
        Family::ErMedium,
        Family::ErDense,
        Family::BoundedDegeneracy,
        Family::PlantedClique,
        Family::PlantedIndependentSet,
        Family::Empty,
        Family::Complete,
        Family::Star,
        Family::Path,
        Family::Cycle,
        Family::TwoCliques,
    ];

    /// Stable name used in instance labels.
    pub fn name(self) -> &'static str {
        match self {
            Family::ErSparse => "er-sparse",
            Family::ErMedium => "er-medium",
            Family::ErDense => "er-dense",
            Family::BoundedDegeneracy => "bounded-degeneracy",
            Family::PlantedClique => "planted-clique",
            Family::PlantedIndependentSet => "planted-is",
            Family::Empty => "empty",
            Family::Complete => "complete",
            Family::Star => "star",
            Family::Path => "path",
            Family::Cycle => "cycle",
            Family::TwoCliques => "two-cliques",
        }
    }
}

/// One reproducible unweighted test instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Instance {
    /// Which generator to use.
    pub family: Family,
    /// Number of vertices.
    pub n: usize,
    /// Generator seed (ignored by the deterministic families).
    pub seed: u64,
}

impl Instance {
    /// Build an instance descriptor.
    pub fn new(family: Family, n: usize, seed: u64) -> Self {
        Self { family, n, seed }
    }

    /// Materialise the graph. Pure: same `(family, n, seed)` → same graph.
    pub fn graph(&self) -> Graph {
        let (n, seed) = (self.n, self.seed);
        match self.family {
            Family::ErSparse => gen::gnp(n, (1.5 / n as f64).min(1.0), seed),
            Family::ErMedium => gen::gnp(n, 0.3, seed),
            Family::ErDense => gen::gnp(n, 0.7, seed),
            Family::BoundedDegeneracy => bounded_degeneracy(n, 3, seed),
            Family::PlantedClique => gen::planted_clique(n, (n / 3).max(3).min(n), 0.2, seed).0,
            Family::PlantedIndependentSet => {
                gen::planted_independent_set(n, (n / 3).max(2).min(n), 0.4, seed).0
            }
            Family::Empty => Graph::empty(n),
            Family::Complete => Graph::complete(n),
            Family::Star => gen::star(n),
            Family::Path => gen::path(n),
            Family::Cycle => {
                if n >= 3 {
                    gen::cycle(n)
                } else {
                    gen::path(n)
                }
            }
            Family::TwoCliques => gen::cliques(n, 2),
        }
    }

    /// The reproduction label every judge prints on failure.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[n={}, seed={}]",
            self.family.name(),
            self.n,
            self.seed
        )
    }
}

/// Random graph of degeneracy ≤ `d`: vertices are inserted in a random
/// order and each attaches to at most `d` randomly chosen predecessors.
/// The insertion order itself witnesses the degeneracy bound.
pub fn bounded_degeneracy(n: usize, d: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xDE6E_5EED_0000_0000);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher–Yates so vertex ids don't coincide with insertion order.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut g = Graph::empty(n);
    for i in 1..n {
        let picks = rng.gen_range(0..=d.min(i));
        let mut earlier: Vec<usize> = (0..i).collect();
        for _ in 0..picks {
            let j = rng.gen_range(0..earlier.len());
            let u = earlier.swap_remove(j);
            g.add_edge(order[u], order[i]);
        }
    }
    g
}

/// The default conformance corpus: every family crossed with the given
/// sizes and seeds.
pub fn corpus(ns: &[usize], seeds: &[u64]) -> Vec<Instance> {
    let mut out = Vec::new();
    for &family in Family::ALL.iter() {
        for &n in ns {
            for &seed in seeds {
                out.push(Instance::new(family, n, seed));
            }
        }
    }
    out
}

/// Weighted instance families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WeightedFamily {
    /// G(n, 0.35) with uniform weights in `1..=100`.
    ErUniform,
    /// Sparse G(n, p≈2/n) with uniform weights in `1..=50`; usually
    /// disconnected, so distance-∞ paths are exercised.
    SparseUniform,
    /// Complete metric: vertices are random points on a 64×64 grid and
    /// `w(u,v) = 1 + ‖p_u − p_v‖₁` (the +1 keeps weights positive while
    /// preserving the triangle inequality).
    Metric,
    /// Weighted cycle with weights `1..=n` — the unique-MST worst case
    /// where exactly one edge must be dropped.
    WeightedCycle,
}

impl WeightedFamily {
    /// Every weighted family, in a fixed order.
    pub const ALL: [WeightedFamily; 4] = [
        WeightedFamily::ErUniform,
        WeightedFamily::SparseUniform,
        WeightedFamily::Metric,
        WeightedFamily::WeightedCycle,
    ];

    /// Stable name used in instance labels.
    pub fn name(self) -> &'static str {
        match self {
            WeightedFamily::ErUniform => "wer-uniform",
            WeightedFamily::SparseUniform => "wer-sparse",
            WeightedFamily::Metric => "metric",
            WeightedFamily::WeightedCycle => "weighted-cycle",
        }
    }
}

/// One reproducible weighted test instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightedInstance {
    /// Which generator to use.
    pub family: WeightedFamily,
    /// Number of vertices.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

impl WeightedInstance {
    /// Build an instance descriptor.
    pub fn new(family: WeightedFamily, n: usize, seed: u64) -> Self {
        Self { family, n, seed }
    }

    /// Materialise the weighted graph. Pure in `(family, n, seed)`.
    pub fn graph(&self) -> WeightedGraph {
        let (n, seed) = (self.n, self.seed);
        match self.family {
            WeightedFamily::ErUniform => gen::gnp_weighted(n, 0.35, 100, seed),
            WeightedFamily::SparseUniform => {
                gen::gnp_weighted(n, (2.0 / n as f64).min(1.0), 50, seed)
            }
            WeightedFamily::Metric => metric(n, seed),
            WeightedFamily::WeightedCycle => {
                let mut wg = WeightedGraph::empty(n);
                for v in 0..n {
                    if n >= 2 && (v + 1 < n || n >= 3) {
                        wg.set_weight(v, (v + 1) % n, v as u64 + 1);
                    }
                }
                wg
            }
        }
    }

    /// The reproduction label every judge prints on failure.
    pub fn label(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for WeightedInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[n={}, seed={}]",
            self.family.name(),
            self.n,
            self.seed
        )
    }
}

fn metric(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6E74_7269_6300_0000);
    let pts: Vec<(i64, i64)> = (0..n)
        .map(|_| (rng.gen_range(0i64..64), rng.gen_range(0i64..64)))
        .collect();
    let mut wg = WeightedGraph::empty(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = (pts[u].0 - pts[v].0).unsigned_abs() + (pts[u].1 - pts[v].1).unsigned_abs();
            wg.set_weight(u, v, 1 + d);
        }
    }
    wg
}

/// The default weighted corpus: every family × sizes × seeds.
pub fn weighted_corpus(ns: &[usize], seeds: &[u64]) -> Vec<WeightedInstance> {
    let mut out = Vec::new();
    for &family in WeightedFamily::ALL.iter() {
        for &n in ns {
            for &seed in seeds {
                out.push(WeightedInstance::new(family, n, seed));
            }
        }
    }
    out
}

/// Shared `proptest` strategies over the instance corpus.
pub mod strategies {
    use super::*;
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    /// Strategy drawing a random [`Instance`] with `n` in a fixed range.
    #[derive(Clone, Debug)]
    pub struct ArbInstance {
        lo: usize,
        hi: usize,
    }

    /// Any family, any seed, `n ∈ [lo, hi]` (inclusive).
    pub fn arb_instance(lo: usize, hi: usize) -> ArbInstance {
        assert!(2 <= lo && lo <= hi, "instance size range must start ≥ 2");
        ArbInstance { lo, hi }
    }

    impl Strategy for ArbInstance {
        type Value = Instance;
        fn sample(&self, rng: &mut TestRng) -> Instance {
            let family = Family::ALL[rng.below(Family::ALL.len() as u64) as usize];
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            Instance::new(family, n, rng.next_u64() % 1_000_000)
        }
    }

    /// Strategy drawing a random [`WeightedInstance`].
    #[derive(Clone, Debug)]
    pub struct ArbWeightedInstance {
        lo: usize,
        hi: usize,
    }

    /// Any weighted family, any seed, `n ∈ [lo, hi]` (inclusive).
    pub fn arb_weighted_instance(lo: usize, hi: usize) -> ArbWeightedInstance {
        assert!(2 <= lo && lo <= hi, "instance size range must start ≥ 2");
        ArbWeightedInstance { lo, hi }
    }

    impl Strategy for ArbWeightedInstance {
        type Value = WeightedInstance;
        fn sample(&self, rng: &mut TestRng) -> WeightedInstance {
            let family = WeightedFamily::ALL[rng.below(WeightedFamily::ALL.len() as u64) as usize];
            let n = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            WeightedInstance::new(family, n, rng.next_u64() % 1_000_000)
        }
    }

    /// Strategy drawing a random [`cliquesim::BitString`] of length
    /// `0..=max_bits`.
    #[derive(Clone, Debug)]
    pub struct ArbBitString {
        max_bits: usize,
    }

    /// Bit strings of any length up to `max_bits` inclusive.
    pub fn arb_bitstring(max_bits: usize) -> ArbBitString {
        ArbBitString { max_bits }
    }

    impl Strategy for ArbBitString {
        type Value = cliquesim::BitString;
        fn sample(&self, rng: &mut TestRng) -> cliquesim::BitString {
            let len = rng.below(self.max_bits as u64 + 1) as usize;
            (0..len).map(|_| rng.next_u64() & 1 == 1).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn instances_are_reproducible_from_their_label_triple() {
        for inst in corpus(&[2, 5, 9, 16], &[0, 1, 42]) {
            assert_eq!(inst.graph(), inst.graph(), "{inst}: generator not pure");
        }
        for inst in weighted_corpus(&[2, 5, 9, 16], &[0, 1, 42]) {
            assert_eq!(inst.graph(), inst.graph(), "{inst}: generator not pure");
        }
    }

    #[test]
    fn seeds_actually_vary_the_random_families() {
        for family in [
            Family::ErMedium,
            Family::BoundedDegeneracy,
            Family::PlantedClique,
        ] {
            let a = Instance::new(family, 20, 1).graph();
            let differs = (2u64..12).any(|s| Instance::new(family, 20, s).graph() != a);
            assert!(differs, "{}: seed has no effect", family.name());
        }
    }

    #[test]
    fn bounded_degeneracy_is_bounded() {
        // Repeatedly peel a minimum-degree vertex; the max degree seen at
        // peel time is exactly the degeneracy.
        for seed in 0..8 {
            let g = bounded_degeneracy(24, 3, seed);
            let n = g.n();
            let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
            let mut alive = vec![true; n];
            let mut degeneracy = 0;
            for _ in 0..n {
                let v = (0..n)
                    .filter(|&v| alive[v])
                    .min_by_key(|&v| deg[v])
                    .unwrap();
                degeneracy = degeneracy.max(deg[v]);
                alive[v] = false;
                for u in g.neighbors(v) {
                    if alive[u] {
                        deg[u] -= 1;
                    }
                }
            }
            assert!(degeneracy <= 3, "seed {seed}: degeneracy {degeneracy} > 3");
        }
    }

    #[test]
    fn metric_family_satisfies_the_triangle_inequality() {
        for seed in 0..4 {
            let wg = WeightedInstance::new(WeightedFamily::Metric, 12, seed).graph();
            let n = wg.n();
            for u in 0..n {
                for v in 0..n {
                    for w in 0..n {
                        if u != v && v != w && u != w {
                            assert!(
                                wg.weight(u, v) <= wg.weight(u, w) + wg.weight(w, v),
                                "metric[n=12, seed={seed}]: triangle inequality violated"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adversarial_families_have_their_shapes() {
        let n = 10;
        assert_eq!(Instance::new(Family::Empty, n, 0).graph().edge_count(), 0);
        assert_eq!(
            Instance::new(Family::Complete, n, 0).graph().edge_count(),
            n * (n - 1) / 2
        );
        assert_eq!(Instance::new(Family::Star, n, 0).graph().degree(0), n - 1);
        assert_eq!(
            Instance::new(Family::Path, n, 0).graph().edge_count(),
            n - 1
        );
        assert_eq!(Instance::new(Family::Cycle, n, 0).graph().edge_count(), n);
        assert!(!cc_graph::reference::is_connected(
            &Instance::new(Family::TwoCliques, n, 0).graph()
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn strategy_instances_materialise(inst in strategies::arb_instance(2, 20)) {
            let g = inst.graph();
            prop_assert_eq!(g.n(), inst.n, "{}", inst);
        }

        #[test]
        fn strategy_weighted_instances_materialise(
            inst in strategies::arb_weighted_instance(2, 16),
        ) {
            let g = inst.graph();
            prop_assert_eq!(g.n(), inst.n, "{}", inst);
        }
    }
}
