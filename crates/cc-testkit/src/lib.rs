//! # cc-testkit — differential & conformance testing backbone
//!
//! The paper's claims (Korhonen & Suomela, SPAA 2018) are *exact*
//! statements: round counts, per-message bandwidth bounds, and output
//! correctness for Theorems 3, 7 and 9–11. This crate turns those into
//! machine-checked conformance obligations shared by every algorithm
//! crate in the workspace:
//!
//! * [`instances`] — deterministic, seed-addressed instance families
//!   (Erdős–Rényi, bounded-degeneracy, planted subgraphs, weighted
//!   metrics, adversarial worst cases) plus shared `proptest` strategies.
//!   Every [`instances::Instance`] prints as `family[n=…, seed=…]`, and
//!   every judge threads that label into its panic message, so a failing
//!   conformance test always names the seed that reproduces it.
//! * [`oracle`] — centralized reference implementations (matmul, APSP,
//!   BFS/SSSP, MST, subgraph counting, covers/dominating sets) that
//!   re-judge protocol outputs independently of the algorithm crates.
//! * [`differential`] — runs one protocol under every engine pool shape
//!   (sequential and pooled) and across communication modes (clique /
//!   broadcast-only / CONGEST ring where defined), asserting identical
//!   outputs, [`cliquesim::RunStats`], and transcripts.
//! * [`audit`] — a transcript replay + bandwidth auditor that re-walks
//!   recorded [`cliquesim::Transcript`]s and rejects any message over the
//!   `⌈log₂ n⌉`-bit budget, any send/receive asymmetry, and any run
//!   exceeding a theorem-declared round bound.
//! * [`faults`] — fault-conformance runners: the same
//!   [`cliquesim::FaultPlan`] replayed under every pool shape must yield
//!   identical outputs, stats, transcripts, and fault reports, and an
//!   empty plan must change nothing at all.
//! * [`churn`] — churn-conformance families for the rejoin/state-sync
//!   tier: seed-addressed [`churn::ChurnCase`]s (Poisson crash/rejoin
//!   schedules) with replayable `churn[n=…, seed=…]` labels, pool-shape ×
//!   delivery-backend differentials, and a ledger judge that closes the
//!   sync counters against the fault report and the plan's downtime.
//! * [`auth`] — authenticated-tier conformance: seed-addressed
//!   [`auth::AuthCase`]s (`auth[n=…, f=…, seed=…]`) pairing a
//!   [`cliquesim::AuthKeyring`] with an honest-majority `f < n/2` traitor
//!   plan, and [`differential_authenticated`] replaying each pair over
//!   every pool shape × delivery backend with byte-identical results.
//! * [`byzantine`] — the same obligations for the
//!   [`cliquesim::ByzantinePlan`] traitor tier, plus the
//!   [`byzantine::equivocation_witness`] checker that exhibits a single
//!   traitor forging per-link majorities, and `proptest` strategies for
//!   `f < n/3` traitor sets.
//! * [`fleet`] — fleet differentials for `cc-service`: pure-data
//!   [`fleet::FleetJob`] descriptors (instance × workload × engine shape ×
//!   seed-addressed adversary × DAG edges), a serial-oracle comparison
//!   runner ([`assert_fleet_matches_serial`]) requiring byte-identical
//!   outcomes at every scheduler width, and `proptest` strategies over
//!   whole fleets.
//! * [`routing`] — routed-payload oracles for `cc-routing`'s fault-aware
//!   planning layer: seed-addressed [`routing::RouteFaultCase`]s with
//!   replayable `route-fault[…]` labels, a survivor-delivery judge, and
//!   pool-shape differentials plus empty-crash-set transparency checks.
//! * [`certificates`] — a certificate-corruption harness that bit-flips
//!   honest NCLIQUE certificates and asserts every verifier rejects the
//!   mutants (modulo confirmed alternate witnesses), printing replayable
//!   `cert-corrupt[…]` labels on failure.
//!
//! ## Reproducing a failure
//!
//! Every judge panic starts with the instance label, e.g.
//! `er-medium[n=16, seed=3]: apsp mismatch …`. Rebuild that exact
//! instance with [`instances::Instance::new`] (the family name maps back
//! via [`instances::Family::ALL`]) — generators are pure functions of
//! `(family, n, seed)`, so the instance is bit-identical on every host.

#![warn(missing_docs)]

pub mod audit;
pub mod auth;
pub mod byzantine;
pub mod certificates;
pub mod churn;
pub mod differential;
pub mod faults;
pub mod fleet;
pub mod instances;
pub mod matmul;
pub mod oracle;
pub mod routing;

pub use audit::{
    assert_transcripts_conform, audit_transcripts, AuditReport, AuditSpec, AuditViolation,
};
pub use auth::{auth_corpus, differential_authenticated, AuthCase};
pub use byzantine::{
    assert_empty_byzantine_transparent, differential_byzantine, equivocation_witness, ByzantineRun,
};
pub use certificates::{assert_corrupted_certificates_rejected, corrupt_labelling};
pub use churn::{churn_corpus, differential_churn, judge_churn_accounting, ChurnCase};
pub use differential::{
    differential_broadcast_only, differential_engines, differential_programs, differential_session,
    ring_topology, BACKENDS, POOL_SHAPES,
};
pub use faults::{assert_empty_plan_transparent, differential_faulted, FaultedRun};
pub use fleet::{assert_fleet_matches_serial, fleet_batch, Adversary, FleetJob, Workload};
pub use instances::{corpus, weighted_corpus, Family, Instance, WeightedFamily, WeightedInstance};
pub use matmul::{differential_matmul, matmul_corpus, wrap_mm, MmCase, MmFamily, MM_WIDTH};
pub use routing::{
    assert_empty_crash_transparent, differential_route_balanced_faulted,
    differential_route_faulted, judge_routed_delivery, RouteFaultCase, RoutedRun,
};
