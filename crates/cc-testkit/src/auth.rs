//! Authenticated-tier conformance runners: the signed-message envelope
//! (`cliquesim::auth`) must be as schedule-independent as everything
//! beneath it. A tag is a pure function of `(key, round, sender,
//! payload)`, so a run with a keyring attached — even one where traitors
//! forge tags — must be byte-identical across every pool shape in
//! [`crate::POOL_SHAPES`] and every delivery backend in
//! [`crate::BACKENDS`]. This
//! module mirrors [`crate::byzantine`] for the top tier of the adversary
//! ladder: [`differential_authenticated`] replays the same
//! `(keyring, plan)` pair over the whole grid, and [`AuthCase`] gives the
//! acceptance sweep seed-addressed honest-majority adversaries with
//! replayable `auth[n=…, f=…, seed=…]` labels.
//!
//! The authenticated tier's extra obligations, pinned in
//! `tests/auth_suite.rs` at the workspace root:
//!
//! * **honest agreement past `n/3`** — Dolev–Strong delivers for every
//!   seeded `f < n/2` case here (and all `f < n` via the classic
//!   wrapper), on plans that defeat Bracha;
//! * **forgery accounting** — `RunStats.rejected_tags` counts exactly the
//!   adversary's forged or damaged signed frames, never honest traffic;
//! * **transparency** — an engine *without* a keyring reports every auth
//!   counter as zero and behaves bit-identically to one that never heard
//!   of signing.

use std::fmt;

use cliquesim::{AuthKeyring, ByzantinePlan, Engine, NodeId, NodeProgram};

use crate::byzantine::{differential_byzantine, ByzantineRun};

/// A seed-addressed authenticated-adversary case: `n` nodes, `f`
/// traitors (honest-majority regime, `f < n/2`), and one seed driving
/// *both* the keyring and the traitor plan — printing as
/// `auth[n=…, f=…, seed=…]`, the label every suite panic leads with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuthCase {
    /// Clique size.
    pub n: usize,
    /// Traitor count; construction asserts `f < n/2`.
    pub f: usize,
    /// Seed for the keyring and the adversary plan.
    pub seed: u64,
}

impl AuthCase {
    /// A new case; asserts the honest-majority regime `f < n/2` that
    /// [`differential_authenticated`] sweeps.
    pub fn new(n: usize, f: usize, seed: u64) -> Self {
        assert!(2 * f < n, "auth cases cover f < n/2 (got n={n}, f={f})");
        Self { n, f, seed }
    }

    /// The case's keyring: `AuthKeyring::from_seed(n, seed)`.
    pub fn keyring(&self) -> AuthKeyring {
        AuthKeyring::from_seed(self.n, self.seed)
    }

    /// The case's adversary: `f` seed-drawn traitors (never drafting
    /// `spare`, e.g. the broadcast source) that garble every payload,
    /// stay silent on a quarter of links, and forge tags on another
    /// quarter — each lie tier the authenticated envelope must absorb.
    pub fn plan(&self, spare: &[NodeId]) -> ByzantinePlan {
        ByzantinePlan::new(self.seed)
            .with_random_traitors(self.n, self.f, spare)
            .garble(1.0)
            .silence(0.25)
            .forge(0.25)
    }
}

impl fmt::Display for AuthCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "auth[n={}, f={}, seed={}]", self.n, self.f, self.seed)
    }
}

/// The acceptance sweep's corpus: for each clique size, every rung of
/// the tolerated range — no traitors, the old `f < n/3` ceiling, and the
/// honest-majority maximum `⌈n/2⌉ − 1` — across a couple of seeds.
pub fn auth_corpus() -> Vec<AuthCase> {
    let mut cases = Vec::new();
    for n in [6usize, 9, 13] {
        let rungs = [0, n.div_ceil(3).saturating_sub(1), n.div_ceil(2) - 1];
        for f in rungs {
            for seed in [1, 2] {
                let case = AuthCase::new(n, f, seed);
                if !cases.contains(&case) {
                    cases.push(case);
                }
            }
        }
    }
    cases
}

/// Run node programs under `plan` with `keyring` attached, over every
/// `(backend, pool shape)` cell, asserting byte-identical outputs,
/// stats, transcripts, fault reports, and Byzantine reports — the same
/// contract as [`differential_byzantine`], one tier up. Returns the
/// reference run for further auditing (its `RunStats` carry the
/// `signed_messages` / `auth_bits` / `rejected_tags` counters the suite
/// closes against the adversary's event log).
///
/// The factory is called once per cell and must produce identical
/// programs each time (pass a fixed seed in).
pub fn differential_authenticated<P, M>(
    label: &str,
    base: &Engine,
    keyring: &AuthKeyring,
    plan: &ByzantinePlan,
    make_programs: M,
) -> ByzantineRun<P::Output>
where
    P: NodeProgram,
    P::Output: PartialEq + fmt::Debug,
    M: FnMut() -> Vec<P>,
{
    let authed = base.clone().with_auth(keyring.clone());
    differential_byzantine(&format!("{label} {keyring}"), &authed, plan, make_programs)
}

/// Shared `proptest` strategies over authenticated adversary cases.
pub mod strategies {
    use super::*;
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    /// Strategy drawing a random [`AuthCase`] for an `n`-node clique:
    /// any seed, any traitor count in the full honest-majority range
    /// `f ∈ [0, ⌈n/2⌉ − 1]`.
    #[derive(Clone, Debug)]
    pub struct ArbAuthCase {
        n: usize,
    }

    /// See [`ArbAuthCase`].
    pub fn arb_auth_case(n: usize) -> ArbAuthCase {
        assert!(n >= 3, "need n ≥ 3 for a non-trivial honest majority");
        ArbAuthCase { n }
    }

    impl Strategy for ArbAuthCase {
        type Value = AuthCase;
        fn sample(&self, rng: &mut TestRng) -> AuthCase {
            let max_f = self.n.div_ceil(2) - 1;
            let f = rng.below(max_f as u64 + 1) as usize;
            AuthCase::new(self.n, f, rng.next_u64() % 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{BitString, Inbox, NodeCtx, Outbox, Status};

    /// Three rounds of id gossip under the envelope: programs read the
    /// payload prefix and ignore the trailing tag, so the fixture works
    /// with and without a keyring.
    #[derive(Clone)]
    struct Gossip {
        heard: Vec<u64>,
    }

    impl NodeProgram for Gossip {
        type Output = Vec<u64>;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<Vec<u64>> {
            for (u, m) in inbox.iter() {
                if let Ok(v) = m.reader().read_uint(ctx.id_width()) {
                    self.heard.push(u.0 as u64 * 1000 + v);
                }
            }
            if round < 3 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                outbox.broadcast(&m);
                return Status::Continue;
            }
            Status::Halt(self.heard.clone())
        }
    }

    fn gossip(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { heard: Vec::new() }).collect()
    }

    #[test]
    fn authenticated_differential_is_stable_across_shapes() {
        // n = 15 ≥ 2·7, so the 7-worker pooled path really engages.
        let n = 15;
        let case = AuthCase::new(n, 5, 42);
        let plan = case.plan(&[]);
        let (outputs, stats, transcripts, _, byz) =
            differential_authenticated("gossip", &Engine::new(n), &case.keyring(), &plan, || {
                gossip(n)
            });
        assert!(outputs.iter().all(|o| o.is_some()), "no one crashes here");
        assert!(stats.signed_messages > 0, "{case}: nothing was signed");
        assert!(
            stats.rejected_tags > 0,
            "{case}: garbled+forged traffic must fail verification"
        );
        assert!(!byz.is_empty());
        assert_eq!(transcripts.len(), n);
    }

    #[test]
    fn corpus_cases_are_distinct_and_honest_majority() {
        let corpus = auth_corpus();
        assert!(corpus.len() >= 12, "the sweep covers all three rungs");
        for (i, case) in corpus.iter().enumerate() {
            assert!(2 * case.f < case.n, "{case}: not honest-majority");
            assert!(!corpus[i + 1..].contains(case), "{case}: duplicated");
        }
        assert_eq!(format!("{}", corpus[0]), "auth[n=6, f=0, seed=1]");
    }

    #[test]
    fn sampled_auth_cases_respect_the_bound() {
        use proptest::strategy::Strategy;
        use proptest::test_runner::TestRng;
        let strat = strategies::arb_auth_case(9);
        let mut rng = TestRng::deterministic("sampled_auth_cases_respect_the_bound");
        for _ in 0..50 {
            let case = strat.sample(&mut rng);
            assert!(2 * case.f < 9, "{case}: f too large");
            assert!(case.f <= 4, "⌈9/2⌉ - 1 = 4 is the cap");
        }
    }
}
