//! Seed-addressed matrix-multiplication instances.
//!
//! The matmul analogue of [`crate::instances`]: an [`MmCase`] is a pure
//! function of `(family, n, m, seed)` — the same tuple always yields the
//! same matrix pair on every host, so a failing conformance cell that
//! prints its [`MmCase::label`] (`mm-sparse[n=64, m=512, seed=1]@auto`)
//! is reproducible from that line alone. Families cover the density
//! regimes the strategy selector arbitrates: genuinely sparse
//! (`m ≈ n^{3/2}/2`), dense, banded (sparse but adversarially clustered,
//! so per-band nonzero counts are maximally skewed), and the degenerate
//! boundary shapes (all-zero, a single nonzero).
//!
//! Entries live in the width-[`MM_WIDTH`] two's-complement ring — the
//! carrier every differential matmul cell runs over — and
//! [`differential_matmul`] judges each protocol against
//! [`crate::oracle::judge_matmul`] with independently written wrapping
//! closures, preserving the testkit rule that oracles share no code with
//! the system under test.

use crate::differential::differential_session;
use crate::oracle::judge_matmul;
use cliquesim::Session;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Ring width every matmul case is generated for: wide enough that sparse
/// instances never wrap, narrow enough that dense `n = 216` instances do —
/// which makes the wrapping semantics themselves part of the differential
/// surface.
pub const MM_WIDTH: usize = 16;

/// Reduce into the signed width-[`MM_WIDTH`] window `[-2^15, 2^15)`.
/// Written independently of any `Semiring` implementation on purpose.
pub fn wrap_mm(v: i64) -> i64 {
    let m = 1i64 << MM_WIDTH;
    let r = ((v % m) + m) % m;
    if r >= m / 2 {
        r - m
    } else {
        r
    }
}

/// Matmul instance families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmFamily {
    /// Exactly `m` nonzeros at uniform random positions.
    Sparse,
    /// Every entry nonzero (the `m` field is ignored).
    Dense,
    /// Exactly `m` nonzeros, all within a `⌈√n⌉`-wide diagonal band —
    /// sparse globally but dense inside few blocks, the worst case for
    /// per-band load skew.
    Banded,
    /// The zero matrix (`m` ignored).
    AllZero,
    /// A single nonzero at a seed-derived position (`m` ignored).
    SingleNonzero,
}

impl MmFamily {
    /// Every family, in a fixed order.
    pub const ALL: [MmFamily; 5] = [
        MmFamily::Sparse,
        MmFamily::Dense,
        MmFamily::Banded,
        MmFamily::AllZero,
        MmFamily::SingleNonzero,
    ];

    /// Stable name used in case labels.
    pub fn name(self) -> &'static str {
        match self {
            MmFamily::Sparse => "mm-sparse",
            MmFamily::Dense => "mm-dense",
            MmFamily::Banded => "mm-banded",
            MmFamily::AllZero => "mm-zero",
            MmFamily::SingleNonzero => "mm-single",
        }
    }
}

/// One reproducible matmul instance: a pair of `n × n` matrices over the
/// width-[`MM_WIDTH`] ring, each generated from `(family, n, m, seed)`
/// (the `A` factor) and `(family, n, m, seed ⊕ mix)` (the `B` factor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MmCase {
    /// Which generator to use.
    pub family: MmFamily,
    /// Matrix dimension.
    pub n: usize,
    /// Nonzero budget per factor (families that ignore it keep it for the
    /// label so grid cells stay distinguishable).
    pub m: usize,
    /// Generator seed.
    pub seed: u64,
}

impl MmCase {
    /// Build a case descriptor.
    pub fn new(family: MmFamily, n: usize, m: usize, seed: u64) -> Self {
        Self { family, n, m, seed }
    }

    /// Reproduction label: `mm-sparse[n=64, m=512, seed=1]`.
    pub fn label(&self) -> String {
        format!(
            "{}[n={}, m={}, seed={}]",
            self.family.name(),
            self.n,
            self.m,
            self.seed
        )
    }

    /// Materialise the factor pair. Pure: same case → same matrices.
    pub fn pair(&self) -> (Vec<Vec<i64>>, Vec<Vec<i64>>) {
        (
            gen_matrix(self.family, self.n, self.m, self.seed),
            gen_matrix(self.family, self.n, self.m, self.seed ^ 0x9e37_79b9),
        )
    }

    /// Count the nonzeros of one generated factor.
    pub fn nnz(rows: &[Vec<i64>]) -> usize {
        rows.iter().flatten().filter(|&&v| v != 0).count()
    }
}

impl fmt::Display for MmCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A nonzero value small enough that sparse products stay far from the
/// wrap boundary (so wrapping differences can never mask a real bug in
/// sparse cells).
fn small_nonzero(rng: &mut ChaCha8Rng) -> i64 {
    let v = rng.gen_range(-30i64..30);
    if v == 0 {
        7
    } else {
        v
    }
}

fn gen_matrix(family: MmFamily, n: usize, m: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rows = vec![vec![0i64; n]; n];
    match family {
        MmFamily::Sparse => {
            let mut placed = 0;
            let target = m.min(n * n);
            while placed < target {
                let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if rows[i][j] == 0 {
                    rows[i][j] = small_nonzero(&mut rng);
                    placed += 1;
                }
            }
        }
        MmFamily::Dense => {
            for row in rows.iter_mut() {
                for v in row.iter_mut() {
                    *v = small_nonzero(&mut rng);
                }
            }
        }
        MmFamily::Banded => {
            let half = isqrt_ceil(n).max(1);
            let mut placed = 0;
            let band_cells: usize = (0..n)
                .map(|i| {
                    let lo = i.saturating_sub(half);
                    let hi = (i + half + 1).min(n);
                    hi - lo
                })
                .sum();
            let target = m.min(band_cells);
            while placed < target {
                let i = rng.gen_range(0..n);
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(n);
                let j = rng.gen_range(lo..hi);
                if rows[i][j] == 0 {
                    rows[i][j] = small_nonzero(&mut rng);
                    placed += 1;
                }
            }
        }
        MmFamily::AllZero => {}
        MmFamily::SingleNonzero => {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            rows[i][j] = small_nonzero(&mut rng);
        }
    }
    rows
}

/// `⌈√n⌉`.
fn isqrt_ceil(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while r * r < n {
        r += 1;
    }
    while r > 0 && (r - 1) * (r - 1) >= n {
        r -= 1;
    }
    r
}

/// The standard matmul corpus: for each `n` and `seed`, one case per
/// family with the family's natural nonzero budget (`n·⌊√n⌋/2` for
/// sparse and banded — safely inside the sparse regime).
pub fn matmul_corpus(ns: &[usize], seeds: &[u64]) -> Vec<MmCase> {
    let mut out = Vec::new();
    for &n in ns {
        let budget = (n * isqrt_floor(n) / 2).max(1);
        for &seed in seeds {
            for family in MmFamily::ALL {
                out.push(MmCase::new(family, n, budget, seed));
            }
        }
    }
    out
}

fn isqrt_floor(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while r * r > n {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    r
}

/// Run one matmul protocol for `case` under every delivery backend and
/// pool shape ([`crate::BACKENDS`] × [`crate::POOL_SHAPES`]), assert all
/// grid cells produce identical products and [`cliquesim::RunStats`], then
/// judge the product against the independent serial oracle
/// ([`judge_matmul`] with locally written width-[`MM_WIDTH`] wrapping
/// arithmetic). Returns the agreed product.
///
/// The protocol closure receives the session and both factors; pass a
/// closure that calls the multiplication entry point under test.
pub fn differential_matmul<F>(case: &MmCase, mut protocol: F) -> Vec<Vec<i64>>
where
    F: FnMut(&mut Session, &[Vec<i64>], &[Vec<i64>]) -> Vec<Vec<i64>>,
{
    let (a, b) = case.pair();
    let label = case.label();
    let got = differential_session(&label, case.n, |s| protocol(s, &a, &b));
    judge_matmul(
        &label,
        &a,
        &b,
        &got,
        0i64,
        |x, y| wrap_mm(x + y),
        |x, y| wrap_mm(x * y),
    );
    got
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_pure_functions_of_their_tuple() {
        for case in matmul_corpus(&[9, 16], &[0, 7]) {
            assert_eq!(case.pair(), case.pair(), "{case}");
        }
    }

    #[test]
    fn families_hit_their_density_contracts() {
        let n = 25;
        let m = 40;
        let (a, _) = MmCase::new(MmFamily::Sparse, n, m, 3).pair();
        assert_eq!(MmCase::nnz(&a), m);
        let (a, _) = MmCase::new(MmFamily::Dense, n, m, 3).pair();
        assert_eq!(MmCase::nnz(&a), n * n);
        let (a, _) = MmCase::new(MmFamily::Banded, n, m, 3).pair();
        assert_eq!(MmCase::nnz(&a), m);
        let half = isqrt_ceil(n);
        for (i, row) in a.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0 {
                    assert!(j + half >= i && j <= i + half, "({i},{j}) outside band");
                }
            }
        }
        let (a, _) = MmCase::new(MmFamily::AllZero, n, m, 3).pair();
        assert_eq!(MmCase::nnz(&a), 0);
        let (a, _) = MmCase::new(MmFamily::SingleNonzero, n, m, 3).pair();
        assert_eq!(MmCase::nnz(&a), 1);
    }

    #[test]
    fn labels_embed_the_reproducing_tuple() {
        let case = MmCase::new(MmFamily::Sparse, 64, 512, 1);
        assert_eq!(case.label(), "mm-sparse[n=64, m=512, seed=1]");
    }

    #[test]
    fn wrap_mm_matches_twos_complement() {
        assert_eq!(wrap_mm(32767), 32767);
        assert_eq!(wrap_mm(32768), -32768);
        assert_eq!(wrap_mm(-32769), 32767);
        assert_eq!(wrap_mm(65536), 0);
        assert_eq!(wrap_mm(-5), -5);
    }

    #[test]
    fn differential_matmul_accepts_a_correct_protocol() {
        // A deliberately naive in-session protocol: node v computes row v
        // locally from full knowledge (no communication) — correct output,
        // trivially identical across the grid.
        let case = MmCase::new(MmFamily::Sparse, 8, 10, 2);
        differential_matmul(&case, |_s, a, b| {
            let n = a.len();
            (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            (0..n).fold(0i64, |acc, k| wrap_mm(acc + wrap_mm(a[i][k] * b[k][j])))
                        })
                        .collect()
                })
                .collect()
        });
    }
}
