//! Fleet differentials: the `cc-service` scheduler must not be able to
//! change results.
//!
//! A [`FleetJob`] is a pure-data job descriptor — a seed-addressed
//! [`Instance`], a [`Workload`], an engine shape (pool threads × delivery
//! backend), and an optional seed-addressed adversary — so a whole batch
//! is reproducible from its printed labels, exactly like the rest of this
//! crate's corpus. [`assert_fleet_matches_serial`] materialises the batch
//! once, runs it through [`cc_service::Batch::run_serial`] (the serial
//! oracle), then through a [`cc_service::Service`] at every requested
//! width, and requires **byte-identical** outcomes: output bytes, error
//! strings, skip witnesses, and [`cliquesim::RunStats`]. Any divergence
//! panics with the job's `family[n=…, seed=…]@backend` label.
//!
//! Dependencies are indices of *earlier* jobs, so every generated fleet
//! is a DAG by construction — the pathological shapes (cycles, dangling
//! edges) are exercised separately through `Batch::add_dependency` in the
//! service suite.

use std::fmt;
use std::sync::Arc;

use cc_service::{Batch, EngineSpec, JobId, JobOutcome, JobSpec, Service, TenantId};
use cliquesim::{
    BitString, ByzantinePlan, DeliveryMode, FaultPlan, Inbox, NodeCtx, NodeProgram, Outbox,
    Session, Status,
};

use crate::instances::Instance;

/// What the job's per-node programs compute. All workloads are pure
/// functions of the instance (and, for [`Workload::EchoDeps`], the
/// dependency bytes), so fleet outputs are comparable byte for byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// `rounds` rounds of id gossip; each node outputs everything it
    /// heard, sender-tagged (order-sensitive enough to catch any
    /// scheduling nondeterminism).
    Gossip {
        /// Number of broadcast rounds.
        rounds: usize,
    },
    /// One broadcast round; each node outputs the minimum id it heard.
    MinId,
    /// Each node broadcasts its degree in the instance graph; outputs are
    /// the heard degree multiset (ties the job to the materialised graph).
    DegreeSum,
    /// One gossip round plus an FNV-1a digest of the dependency outputs —
    /// the workload that makes dependency *values* part of the result.
    EchoDeps,
}

/// A seed-addressed adversary attached to the job's engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Adversary {
    /// Clean run.
    None,
    /// `FaultPlan::new(seed)` with fixed drop/corrupt/truncate rates.
    Faults {
        /// Plan seed.
        seed: u64,
    },
    /// `ByzantinePlan::new(seed)` with `traitors` random traitors and
    /// fixed replay/silence rates. Requires `3·traitors < n`.
    Byzantine {
        /// Plan seed.
        seed: u64,
        /// Number of traitor nodes.
        traitors: usize,
    },
}

/// One pure-data fleet job: everything needed to rebuild the exact
/// [`JobSpec`] on any host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetJob {
    /// Owning tenant (fairness bucket).
    pub tenant: u32,
    /// Seed-addressed input graph.
    pub instance: Instance,
    /// What to compute.
    pub workload: Workload,
    /// Engine pool shape (threads *inside* the simulation).
    pub threads: usize,
    /// Delivery backend.
    pub delivery: DeliveryMode,
    /// Optional seed-addressed adversary.
    pub adversary: Adversary,
    /// Indices of earlier jobs this one depends on.
    pub deps: Vec<usize>,
}

impl FleetJob {
    /// A clean, dependency-free job on the given instance.
    pub fn new(tenant: u32, instance: Instance, workload: Workload) -> Self {
        Self {
            tenant,
            instance,
            workload,
            threads: 1,
            delivery: DeliveryMode::Auto,
            adversary: Adversary::None,
            deps: Vec::new(),
        }
    }

    /// The replayable repro label, e.g.
    /// `er-medium[n=8, seed=11]@sparse+t4+fault7` — instance label and
    /// backend first, so a mismatch names the `family[n, seed]@backend`
    /// cell that reproduces it.
    pub fn label(&self) -> String {
        self.to_string()
    }

    /// Materialise the service-side job spec.
    pub fn to_spec(&self) -> JobSpec {
        let mut engine = EngineSpec::new(self.instance.n)
            .threads(self.threads)
            .delivery(self.delivery);
        match self.adversary {
            Adversary::None => {}
            Adversary::Faults { seed } => {
                engine = engine.fault(
                    FaultPlan::new(seed)
                        .drop_messages(0.15)
                        .corrupt_messages(0.05)
                        .truncate_messages(0.05),
                );
            }
            Adversary::Byzantine { seed, traitors } => {
                engine = engine.byzantine(
                    ByzantinePlan::new(seed)
                        .with_random_traitors(self.instance.n, traitors, &[])
                        .replay(0.2)
                        .silence(0.2),
                );
            }
        }
        let job = self.clone();
        let mut spec = JobSpec::new(
            TenantId(self.tenant),
            self.label(),
            engine,
            Arc::new(
                move |session: &mut Session, deps: &cc_service::DepOutputs| {
                    job.execute(session, deps)
                },
            ),
        );
        spec.deps = self.deps.iter().map(|&d| JobId(d)).collect();
        spec
    }

    /// Run the workload in the given session and serialise the per-node
    /// outputs to bytes. Pure in `(self, dep bytes)` — the determinism
    /// contract `cc_service` jobs must honour.
    fn execute(
        &self,
        session: &mut Session,
        deps: &cc_service::DepOutputs,
    ) -> Result<Vec<u8>, String> {
        let n = self.instance.n;
        let (rounds, payloads): (usize, Vec<u64>) = match self.workload {
            Workload::Gossip { rounds } => (rounds, (0..n as u64).collect()),
            Workload::MinId | Workload::EchoDeps => (1, (0..n as u64).collect()),
            Workload::DegreeSum => {
                let g = self.instance.graph();
                (1, (0..n).map(|v| g.degree(v) as u64).collect())
            }
        };
        let programs: Vec<Broadcast> = payloads
            .into_iter()
            .map(|payload| Broadcast {
                payload,
                rounds,
                heard: Vec::new(),
            })
            .collect();
        // Use the most specific run mode the adversary requires, so the
        // plan's report counters land in the session stats.
        let outputs: Vec<Option<Vec<u64>>> = match self.adversary {
            Adversary::None => session
                .run(programs)
                .map_err(|e| e.to_string())?
                .outputs
                .into_iter()
                .map(Some)
                .collect(),
            Adversary::Faults { .. } => {
                session
                    .run_faulted(programs)
                    .map_err(|e| e.to_string())?
                    .outputs
            }
            Adversary::Byzantine { .. } => {
                session
                    .run_byzantine(programs)
                    .map_err(|e| e.to_string())?
                    .outputs
            }
        };
        let mut bytes = Vec::new();
        for slot in &outputs {
            match slot {
                None => bytes.push(0u8),
                Some(heard) => {
                    bytes.push(1u8);
                    let heard: Vec<u64> = match self.workload {
                        // MinId reduces to a single value per node.
                        Workload::MinId => {
                            vec![heard.iter().map(|h| h % TAG).min().unwrap_or(u64::MAX)]
                        }
                        _ => heard.clone(),
                    };
                    bytes.extend((heard.len() as u32).to_le_bytes());
                    for h in heard {
                        bytes.extend(h.to_le_bytes());
                    }
                }
            }
        }
        if self.workload == Workload::EchoDeps {
            bytes.extend(fnv1a(deps).to_le_bytes());
        }
        Ok(bytes)
    }
}

impl fmt::Display for FleetJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{}+t{}",
            self.instance,
            self.delivery.tag(),
            self.threads
        )?;
        match self.adversary {
            Adversary::None => Ok(()),
            Adversary::Faults { seed } => write!(f, "+fault{seed}"),
            Adversary::Byzantine { seed, traitors } => write!(f, "+byz{seed}x{traitors}"),
        }
    }
}

/// Sender tag multiplier in heard entries: `sender·TAG + payload`.
/// Payloads are node ids or degrees, both `< n ≤ TAG`, so the encoding is
/// collision-free for every corpus size this crate generates.
const TAG: u64 = 1 << 20;

/// The shared per-node program: broadcast `payload` for `rounds` rounds,
/// record every `(sender, value)` heard.
struct Broadcast {
    payload: u64,
    rounds: usize,
    heard: Vec<u64>,
}

impl NodeProgram for Broadcast {
    type Output = Vec<u64>;
    fn step(
        &mut self,
        ctx: &NodeCtx,
        round: usize,
        inbox: &Inbox<'_>,
        outbox: &mut Outbox<'_>,
    ) -> Status<Vec<u64>> {
        for (u, m) in inbox.iter() {
            if let Ok(v) = m.reader().read_uint(ctx.id_width()) {
                self.heard.push(u.0 as u64 * TAG + v);
            }
        }
        if round < self.rounds {
            let mut m = BitString::new();
            m.push_uint(self.payload, ctx.id_width());
            outbox.broadcast(&m);
            Status::Continue
        } else {
            Status::Halt(std::mem::take(&mut self.heard))
        }
    }
}

/// 64-bit FNV-1a over the concatenated dependency outputs.
fn fnv1a(deps: &cc_service::DepOutputs) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for dep in deps {
        for &b in dep.iter() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Materialise a batch from fleet descriptors (job ids are the slice
/// indices).
pub fn fleet_batch(jobs: &[FleetJob]) -> Batch {
    let mut batch = Batch::new();
    for job in jobs {
        batch.push(job.to_spec());
    }
    batch
}

/// The central fleet differential: run the batch through the serial
/// oracle, then through a fresh [`Service`] at every width, asserting
/// outcome-for-outcome byte identity. Panics with the diverging job's
/// repro label; returns the oracle outcomes for further judging.
pub fn assert_fleet_matches_serial(jobs: &[FleetJob], widths: &[usize]) -> Vec<JobOutcome> {
    let batch = fleet_batch(jobs);
    let serial = batch
        .run_serial()
        .unwrap_or_else(|e| panic!("fleet batch rejected: {e}"));
    for &width in widths {
        let service = Service::new(width);
        let fleet = service
            .submit(batch.clone())
            .unwrap_or_else(|e| panic!("fleet batch rejected at width {width}: {e}"))
            .join();
        assert_eq!(
            fleet.len(),
            serial.len(),
            "width {width}: outcome count diverged from serial oracle"
        );
        for (f, s) in fleet.iter().zip(serial.iter()) {
            assert!(
                f == s,
                "{}: width {width} diverged from serial oracle\n  fleet:  {:?}\n  serial: {:?}",
                s.label,
                f.status,
                s.status
            );
        }
    }
    serial
}

/// `proptest` strategies over whole fleets.
pub mod strategies {
    use super::*;
    use crate::instances::Family;
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    /// Strategy drawing a DAG-by-construction fleet of up to `max_jobs`
    /// jobs across up to `tenants` tenants.
    #[derive(Clone, Debug)]
    pub struct ArbFleet {
        max_jobs: usize,
        tenants: u32,
    }

    /// Random fleets: mixed families, workloads, pool shapes, delivery
    /// backends, adversaries, and backward-only dependency edges.
    pub fn arb_fleet(max_jobs: usize, tenants: u32) -> ArbFleet {
        assert!(max_jobs >= 1 && tenants >= 1);
        ArbFleet { max_jobs, tenants }
    }

    impl Strategy for ArbFleet {
        type Value = Vec<FleetJob>;
        fn sample(&self, rng: &mut TestRng) -> Vec<FleetJob> {
            let count = 1 + rng.below(self.max_jobs as u64) as usize;
            (0..count)
                .map(|i| {
                    let family = Family::ALL[rng.below(Family::ALL.len() as u64) as usize];
                    // n ≥ 4 keeps one Byzantine traitor legal (3f < n).
                    let n = 4 + rng.below(9) as usize;
                    let instance = Instance::new(family, n, rng.next_u64() % 1_000_000);
                    let workload = match rng.below(4) {
                        0 => Workload::Gossip {
                            rounds: 1 + rng.below(3) as usize,
                        },
                        1 => Workload::MinId,
                        2 => Workload::DegreeSum,
                        _ => Workload::EchoDeps,
                    };
                    let adversary = match rng.below(4) {
                        0 | 1 => Adversary::None,
                        2 => Adversary::Faults {
                            seed: rng.next_u64() % 1_000_000,
                        },
                        _ => Adversary::Byzantine {
                            seed: rng.next_u64() % 1_000_000,
                            traitors: 1,
                        },
                    };
                    let mut deps = Vec::new();
                    if i > 0 {
                        for _ in 0..rng.below(3) {
                            let d = rng.below(i as u64) as usize;
                            if !deps.contains(&d) {
                                deps.push(d);
                            }
                        }
                    }
                    FleetJob {
                        tenant: rng.below(self.tenants as u64) as u32,
                        instance,
                        workload,
                        threads: [1, 2, 4][rng.below(3) as usize],
                        delivery: [
                            DeliveryMode::Auto,
                            DeliveryMode::Dense,
                            DeliveryMode::Sparse,
                        ][rng.below(3) as usize],
                        adversary,
                        deps,
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::Family;

    #[test]
    fn fleet_labels_carry_the_repro_cell() {
        let mut job = FleetJob::new(2, Instance::new(Family::ErMedium, 8, 11), Workload::MinId);
        job.threads = 4;
        job.delivery = DeliveryMode::Sparse;
        job.adversary = Adversary::Faults { seed: 7 };
        assert_eq!(job.label(), "er-medium[n=8, seed=11]@sparse+t4+fault7");
    }

    #[test]
    fn a_small_mixed_fleet_matches_serial_at_several_widths() {
        let base = Instance::new(Family::ErMedium, 6, 3);
        let mut jobs = vec![
            FleetJob::new(0, base, Workload::Gossip { rounds: 2 }),
            FleetJob::new(1, Instance::new(Family::Star, 5, 0), Workload::DegreeSum),
            FleetJob::new(0, Instance::new(Family::Cycle, 7, 0), Workload::MinId),
        ];
        let mut echo = FleetJob::new(1, base, Workload::EchoDeps);
        echo.deps = vec![0, 2];
        jobs.push(echo);
        let outcomes = assert_fleet_matches_serial(&jobs, &[1, 2, 4]);
        assert!(outcomes.iter().all(|o| o.status.is_success()));
    }

    #[test]
    fn adversarial_fleet_jobs_are_deterministic_too() {
        let mut faulted = FleetJob::new(
            0,
            Instance::new(Family::ErDense, 8, 5),
            Workload::Gossip { rounds: 2 },
        );
        faulted.adversary = Adversary::Faults { seed: 42 };
        faulted.threads = 2;
        let mut byz = FleetJob::new(1, Instance::new(Family::Complete, 7, 1), Workload::MinId);
        byz.adversary = Adversary::Byzantine {
            seed: 9,
            traitors: 2,
        };
        byz.delivery = DeliveryMode::Dense;
        assert_fleet_matches_serial(&[faulted, byz], &[1, 3]);
    }
}
