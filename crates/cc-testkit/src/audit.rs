//! Transcript replay + bandwidth auditing.
//!
//! The paper's model allows at most `⌈log₂ n⌉` bits per ordered pair per
//! round, and each theorem declares a round bound. The engine enforces
//! its *configured* budget at send time, but experiments may legitimately
//! widen it (e.g. `with_bandwidth_multiplier` for Lenzen-style routing).
//! The auditor is the independent check: it re-walks recorded
//! [`Transcript`]s after the fact and rejects any message over a given
//! budget, any send/receive asymmetry between nodes, and any execution
//! longer than a declared round bound — without trusting the engine's
//! own accounting, which it instead cross-checks.

use cliquesim::{BitString, RunStats, Transcript};
use std::fmt;

/// What a transcript set is audited against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditSpec {
    /// Per-message bit budget (the model's `⌈log₂ n⌉` via [`AuditSpec::model`]).
    pub bandwidth: usize,
    /// Optional theorem-declared round bound (inclusive).
    pub round_bound: Option<usize>,
}

impl AuditSpec {
    /// The paper's strict budget for an n-node clique: `⌈log₂ n⌉` bits
    /// per ordered pair per round, no round bound.
    pub fn model(n: usize) -> Self {
        Self {
            bandwidth: BitString::width_for(n),
            round_bound: None,
        }
    }

    /// Explicit bandwidth budget, no round bound.
    pub fn with_bandwidth(bits: usize) -> Self {
        Self {
            bandwidth: bits,
            round_bound: None,
        }
    }

    /// Add an inclusive round bound.
    pub fn with_round_bound(mut self, rounds: usize) -> Self {
        self.round_bound = Some(rounds);
        self
    }
}

/// A violation found while re-walking transcripts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditViolation {
    /// A recorded payload exceeds the per-message budget.
    OverBudget {
        /// Node whose transcript holds the payload.
        node: usize,
        /// Round index within that node's transcript.
        round: usize,
        /// The other endpoint.
        peer: usize,
        /// Observed payload width.
        bits: usize,
        /// The budget it broke.
        limit: usize,
    },
    /// The execution ran longer than the declared bound.
    RoundBoundExceeded {
        /// Rounds actually used.
        rounds: usize,
        /// The declared bound.
        bound: usize,
    },
    /// A send with no matching receive in the recipient's next round,
    /// although the recipient was still active then.
    LostMessage {
        /// Sender.
        from: usize,
        /// Intended recipient.
        to: usize,
        /// Round the send was recorded in.
        round: usize,
    },
    /// A receive with no matching send in the source's previous round.
    GhostMessage {
        /// Node that recorded the receive.
        at: usize,
        /// Claimed source.
        from: usize,
        /// Round the receive was recorded in.
        round: usize,
    },
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditViolation::OverBudget {
                node,
                round,
                peer,
                bits,
                limit,
            } => write!(
                f,
                "node {node}, round {round}: {bits}-bit message to/from {peer} \
                 exceeds the {limit}-bit budget"
            ),
            AuditViolation::RoundBoundExceeded { rounds, bound } => {
                write!(
                    f,
                    "execution used {rounds} rounds, declared bound is {bound}"
                )
            }
            AuditViolation::LostMessage { from, to, round } => write!(
                f,
                "message {from}→{to} sent in round {round} never arrived \
                 although {to} was still active"
            ),
            AuditViolation::GhostMessage { at, from, round } => write!(
                f,
                "node {at} claims a round-{round} message from {from} that {from} never sent"
            ),
        }
    }
}

/// Totals recomputed from the transcripts alone (never copied from the
/// engine), used to cross-check [`RunStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Communication rounds: longest transcript minus the final
    /// receive-only step.
    pub rounds: usize,
    /// Total sent messages across all nodes.
    pub messages: u64,
    /// Total sent payload bits across all nodes.
    pub bits: u64,
    /// Widest single payload observed.
    pub max_message_bits: usize,
}

/// Re-walk a transcript set against a spec.
///
/// Checks, in order: every payload (sent *and* received) fits the
/// budget; every receive in round `r` matches a send in the source's
/// round `r − 1`; every send reaches its recipient in round `r + 1`
/// unless the recipient had already halted (the engine's undelivered
/// case); and the total round count respects the bound, if any.
pub fn audit_transcripts(
    transcripts: &[Transcript],
    spec: &AuditSpec,
) -> Result<AuditReport, AuditViolation> {
    let mut report = AuditReport::default();
    let steps = transcripts
        .iter()
        .map(|t| t.rounds.len())
        .max()
        .unwrap_or(0);
    report.rounds = steps.saturating_sub(1);

    for (v, t) in transcripts.iter().enumerate() {
        for (r, round) in t.rounds.iter().enumerate() {
            for (dst, msg) in &round.sent {
                if msg.len() > spec.bandwidth {
                    return Err(AuditViolation::OverBudget {
                        node: v,
                        round: r,
                        peer: dst.index(),
                        bits: msg.len(),
                        limit: spec.bandwidth,
                    });
                }
                report.messages += 1;
                report.bits += msg.len() as u64;
                report.max_message_bits = report.max_message_bits.max(msg.len());
            }
            for (src, msg) in &round.received {
                if msg.len() > spec.bandwidth {
                    return Err(AuditViolation::OverBudget {
                        node: v,
                        round: r,
                        peer: src.index(),
                        bits: msg.len(),
                        limit: spec.bandwidth,
                    });
                }
            }
        }
    }

    // Cross-node symmetry: receives must trace back to sends, sends must
    // arrive unless the recipient halted first.
    for (v, t) in transcripts.iter().enumerate() {
        for (r, round) in t.rounds.iter().enumerate() {
            for (src, msg) in &round.received {
                let sent_back = r >= 1
                    && transcripts
                        .get(src.index())
                        .and_then(|ts| ts.rounds.get(r - 1))
                        .map(|prev| prev.sent.iter().any(|(d, m)| d.index() == v && m == msg))
                        .unwrap_or(false);
                if !sent_back {
                    return Err(AuditViolation::GhostMessage {
                        at: v,
                        from: src.index(),
                        round: r,
                    });
                }
            }
            for (dst, msg) in &round.sent {
                let receiver = transcripts.get(dst.index());
                let receiver_active = receiver.map(|ts| ts.rounds.len() > r + 1).unwrap_or(false);
                if receiver_active {
                    let arrived = receiver
                        .and_then(|ts| ts.rounds.get(r + 1))
                        .map(|next| {
                            next.received
                                .iter()
                                .any(|(s, m)| s.index() == v && m == msg)
                        })
                        .unwrap_or(false);
                    if !arrived {
                        return Err(AuditViolation::LostMessage {
                            from: v,
                            to: dst.index(),
                            round: r,
                        });
                    }
                }
            }
        }
    }

    if let Some(bound) = spec.round_bound {
        if report.rounds > bound {
            return Err(AuditViolation::RoundBoundExceeded {
                rounds: report.rounds,
                bound,
            });
        }
    }
    Ok(report)
}

/// Panicking wrapper: audit and additionally cross-check the engine's
/// own [`RunStats`] against the independently recomputed totals. Returns
/// the report. The label should embed the reproducing seed.
pub fn assert_transcripts_conform(
    label: &str,
    transcripts: &[Transcript],
    stats: &RunStats,
    spec: &AuditSpec,
) -> AuditReport {
    let report = audit_transcripts(transcripts, spec)
        .unwrap_or_else(|violation| panic!("{label}: transcript audit failed: {violation}"));
    assert!(
        report.rounds == stats.rounds,
        "{label}: transcripts show {} rounds, stats claim {}",
        report.rounds,
        stats.rounds
    );
    assert!(
        report.messages == stats.messages,
        "{label}: transcripts show {} messages, stats claim {}",
        report.messages,
        stats.messages
    );
    assert!(
        report.bits == stats.bits,
        "{label}: transcripts show {} payload bits, stats claim {}",
        report.bits,
        stats.bits
    );
    assert!(
        report.max_message_bits == stats.max_message_bits,
        "{label}: transcripts show a {}-bit max message, stats claim {}",
        report.max_message_bits,
        stats.max_message_bits
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{Engine, Inbox, NodeCtx, NodeId, NodeProgram, Outbox, Status};

    /// Broadcasts a payload of `width` bits for `rounds` rounds.
    #[derive(Clone)]
    struct Chatter {
        width: usize,
        rounds: usize,
    }

    impl NodeProgram for Chatter {
        type Output = ();
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            round: usize,
            _inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<()> {
            if round >= self.rounds {
                return Status::Halt(());
            }
            let mut m = BitString::new();
            for i in 0..self.width {
                m.push(i % 2 == 0);
            }
            outbox.broadcast(&m);
            Status::Continue
        }
    }

    fn run_chatter(n: usize, width: usize, rounds: usize) -> (Vec<Transcript>, RunStats) {
        let engine = Engine::new(n)
            .with_bandwidth(width.max(BitString::width_for(n)))
            .with_transcripts(true);
        let out = engine
            .run((0..n).map(|_| Chatter { width, rounds }).collect())
            .expect("chatter runs clean");
        (out.transcripts.expect("recording on"), out.stats)
    }

    #[test]
    fn clean_run_passes_and_matches_stats() {
        let n = 9;
        let w = BitString::width_for(n);
        let (tr, stats) = run_chatter(n, w, 3);
        let report = assert_transcripts_conform("chatter", &tr, &stats, &AuditSpec::model(n));
        assert_eq!(report.rounds, 3);
        assert_eq!(report.messages, (n * (n - 1) * 3) as u64);
        assert_eq!(report.max_message_bits, w);
    }

    #[test]
    fn auditor_rejects_an_over_budget_protocol() {
        // The engine is configured with double bandwidth (a legitimate
        // experiment), but the *model* budget is ⌈log₂ n⌉ — the auditor
        // must catch the violation the engine was told to allow.
        let n = 8;
        let model_w = BitString::width_for(n);
        let (tr, _) = run_chatter(n, 2 * model_w, 2);
        match audit_transcripts(&tr, &AuditSpec::model(n)) {
            Err(AuditViolation::OverBudget { bits, limit, .. }) => {
                assert_eq!(bits, 2 * model_w);
                assert_eq!(limit, model_w);
            }
            other => panic!("expected OverBudget, got {other:?}"),
        }
    }

    #[test]
    fn auditor_rejects_a_round_bound_violation() {
        let n = 8;
        let (tr, _) = run_chatter(n, 3, 5);
        let spec = AuditSpec::model(n).with_round_bound(3);
        match audit_transcripts(&tr, &spec) {
            Err(AuditViolation::RoundBoundExceeded { rounds, bound }) => {
                assert_eq!((rounds, bound), (5, 3));
            }
            other => panic!("expected RoundBoundExceeded, got {other:?}"),
        }
        // And accepts at the exact bound (inclusive).
        assert!(audit_transcripts(&tr, &AuditSpec::model(n).with_round_bound(5)).is_ok());
    }

    #[test]
    fn auditor_rejects_ghost_and_lost_messages() {
        let n = 5;
        let (mut tr, _) = run_chatter(n, 3, 2);
        // Forge a receive that nobody sent.
        tr[0].rounds[1].received.retain(|(s, _)| s.index() != 1);
        tr[0].rounds[1]
            .received
            .push((NodeId(1), BitString::from_bits([true, true, false])));
        tr[0].rounds[1].received.sort_by_key(|(s, _)| s.index());
        match audit_transcripts(&tr, &AuditSpec::model(n)) {
            Err(AuditViolation::GhostMessage {
                at: 0,
                from: 1,
                round: 1,
            }) => {}
            other => panic!("expected GhostMessage, got {other:?}"),
        }

        let (mut tr2, _) = run_chatter(n, 3, 2);
        // Drop a delivery: node 2 "loses" node 3's round-1 message.
        tr2[2].rounds[1].received.retain(|(s, _)| s.index() != 3);
        match audit_transcripts(&tr2, &AuditSpec::model(n)) {
            Err(AuditViolation::LostMessage {
                from: 3,
                to: 2,
                round: 0,
            }) => {}
            other => panic!("expected LostMessage, got {other:?}"),
        }
    }

    #[test]
    fn empty_transcripts_audit_clean() {
        let report = audit_transcripts(&[], &AuditSpec::with_bandwidth(1)).unwrap();
        assert_eq!(report, AuditReport::default());
    }
}
