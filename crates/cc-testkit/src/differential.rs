//! Differential execution across engine pool shapes, delivery backends,
//! and topologies.
//!
//! PR 1 made the engine's sequential and pooled paths bit-identical on
//! synthetic programs; this module turns that into a standing obligation
//! for every *real* protocol. A differential run executes the same
//! protocol once per `(backend, pool shape)` pair — backends from
//! [`BACKENDS`] (dense matrix, sparse edge list, and the auto heuristic),
//! pool shapes from [`POOL_SHAPES`] (sequential, an even 4-worker split,
//! and a 7-worker pool that divides nothing evenly) — and asserts outputs,
//! accumulated [`RunStats`], and — for raw program runs — full transcripts
//! are identical. Any divergence is a scheduler-nondeterminism or
//! backend-semantics bug, and the panic names the protocol label, the
//! backend (`label@sparse`), and the offending thread count, so the exact
//! failing cell is replayable.

use cliquesim::{DeliveryMode, Engine, NodeProgram, RunStats, Session, Transcript};
use std::fmt::Debug;

/// Pool shapes every differential run covers: sequential, an even split,
/// and a worker count that divides typical `n` unevenly. `with_threads_exact`
/// keeps the pooled path live even on single-core CI hosts.
pub const POOL_SHAPES: [usize; 3] = [1, 4, 7];

/// Delivery backends every differential run covers. `Dense` first, so the
/// reference run each grid compares against is the long-standing dense
/// sequential path; `Auto` last proves the heuristic picks *some* backend
/// that agrees with both forced ones.
pub const BACKENDS: [DeliveryMode; 3] = [
    DeliveryMode::Dense,
    DeliveryMode::Sparse,
    DeliveryMode::Auto,
];

/// Run a session-level protocol under every pool shape on a plain clique
/// engine and assert identical outputs and stats. Returns the output of
/// the sequential run.
pub fn differential_session<T, F>(label: &str, n: usize, protocol: F) -> T
where
    T: PartialEq + Debug,
    F: FnMut(&mut Session) -> T,
{
    differential_engines(label, &Engine::new(n), protocol)
}

/// Like [`differential_session`], but over an arbitrary pre-configured
/// base engine (topology, bandwidth, broadcast restriction, …). The base
/// engine's own thread setting is overridden by each pool shape.
pub fn differential_engines<T, F>(label: &str, base: &Engine, mut protocol: F) -> T
where
    T: PartialEq + Debug,
    F: FnMut(&mut Session) -> T,
{
    let mut reference: Option<(T, RunStats, usize)> = None;
    for &mode in BACKENDS.iter() {
        for &threads in POOL_SHAPES.iter() {
            let tag = format!("{label}@{}", mode.tag());
            let mut session =
                Session::new(base.clone().with_threads_exact(threads).with_delivery(mode));
            let out = protocol(&mut session);
            let stats = session.stats();
            let phases = session.phases();
            match &reference {
                None => reference = Some((out, stats, phases)),
                Some((out0, stats0, phases0)) => {
                    assert!(
                        *out0 == out,
                        "{tag}: output diverges at threads={threads}: {out:?} vs {out0:?}"
                    );
                    assert!(
                        *stats0 == stats,
                        "{tag}: RunStats diverge at threads={threads}: {stats:?} vs {stats0:?}"
                    );
                    assert!(
                        *phases0 == phases,
                        "{tag}: phase count diverges at threads={threads}"
                    );
                }
            }
        }
    }
    reference.expect("BACKENDS and POOL_SHAPES are non-empty").0
}

/// Run a broadcast-capable protocol differentially in the unrestricted
/// clique *and* the broadcast-only model (paper §2), asserting the two
/// models agree with each other and across pool shapes. Returns the
/// clique-model output.
pub fn differential_broadcast_only<T, F>(label: &str, n: usize, mut protocol: F) -> T
where
    T: PartialEq + Debug,
    F: FnMut(&mut Session) -> T,
{
    let clique = differential_engines(&format!("{label}/clique"), &Engine::new(n), &mut protocol);
    let bcast = differential_engines(
        &format!("{label}/broadcast-only"),
        &Engine::new(n).broadcast_only(true),
        &mut protocol,
    );
    assert!(
        clique == bcast,
        "{label}: broadcast-only model diverges from clique: {bcast:?} vs {clique:?}"
    );
    clique
}

/// Run raw node programs under every pool shape with transcript
/// recording forced on, asserting byte-identical outputs, stats, and
/// transcripts. Returns the sequential run's `(outputs, stats,
/// transcripts)` for further auditing.
///
/// The factory is called once per shape and must produce identical
/// programs each time (deterministic construction is the caller's
/// responsibility — pass a fixed seed in).
pub fn differential_programs<P, M>(
    label: &str,
    base: &Engine,
    mut make_programs: M,
) -> (Vec<P::Output>, RunStats, Vec<Transcript>)
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    let mut reference: Option<(Vec<P::Output>, RunStats, Vec<Transcript>)> = None;
    for &mode in BACKENDS.iter() {
        for &threads in POOL_SHAPES.iter() {
            let tag = format!("{label}@{}", mode.tag());
            let engine = base
                .clone()
                .with_transcripts(true)
                .with_threads_exact(threads)
                .with_delivery(mode);
            let out = engine
                .run(make_programs())
                .unwrap_or_else(|e| panic!("{tag}: engine error at threads={threads}: {e}"));
            let transcripts = out.transcripts.expect("transcripts were requested");
            match &reference {
                None => reference = Some((out.outputs, out.stats, transcripts)),
                Some((out0, stats0, tr0)) => {
                    assert!(
                        *out0 == out.outputs,
                        "{tag}: outputs diverge at threads={threads}"
                    );
                    assert!(
                        *stats0 == out.stats,
                        "{tag}: RunStats diverge at threads={threads}: {:?} vs {stats0:?}",
                        out.stats
                    );
                    assert!(
                        *tr0 == transcripts,
                        "{tag}: transcripts diverge at threads={threads}"
                    );
                }
            }
        }
    }
    reference.expect("BACKENDS and POOL_SHAPES are non-empty")
}

/// Adjacency matrix of the n-cycle, for CONGEST-ring differentials via
/// `Engine::with_topology`.
pub fn ring_topology(n: usize) -> Vec<bool> {
    let mut adj = vec![false; n * n];
    for v in 0..n {
        let w = (v + 1) % n;
        if v != w {
            adj[v * n + w] = true;
            adj[w * n + v] = true;
        }
    }
    adj
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{BitString, Inbox, NodeCtx, NodeId, Outbox, Status};

    /// One broadcast round: every node learns the minimum id.
    #[derive(Clone)]
    struct MinId(u64);

    impl NodeProgram for MinId {
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            if round == 0 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                outbox.broadcast(&m);
                self.0 = ctx.id.0 as u64;
                Status::Continue
            } else {
                for (_, msg) in inbox.iter() {
                    self.0 = self.0.min(msg.reader().read_uint(ctx.id_width()).unwrap());
                }
                Status::Halt(self.0)
            }
        }
    }

    /// Ring token passing: node 0 sends a token around the cycle once;
    /// each node outputs whether it ever saw the token.
    #[derive(Clone, Default)]
    struct RingHop {
        seen: bool,
    }

    impl NodeProgram for RingHop {
        type Output = bool;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<bool> {
            let (me, n) = (ctx.id.index(), ctx.n);
            if !inbox.from(NodeId::from((me + n - 1) % n)).is_empty() {
                self.seen = true;
                let next = (me + 1) % n;
                if next != 0 {
                    outbox.send(NodeId::from(next), BitString::from_bits([true]));
                }
            }
            if round == 0 && me == 0 && n > 1 {
                outbox.send(NodeId::from(1 % n), BitString::from_bits([true]));
            }
            if round >= n - 1 {
                return Status::Halt(me == 0 || self.seen);
            }
            Status::Continue
        }
    }

    #[test]
    fn program_differential_is_stable_across_shapes() {
        // n = 15 ≥ 2·7, so the 7-worker pooled path really engages.
        let n = 15;
        let (outputs, stats, transcripts) =
            differential_programs("minid", &Engine::new(n), || vec![MinId(0); n]);
        assert_eq!(outputs, vec![0; n]);
        assert_eq!(stats.rounds, 1);
        assert_eq!(transcripts.len(), n);
    }

    #[test]
    fn ring_topology_runs_under_congest_restriction() {
        let n = 6;
        let engine = Engine::new(n).with_topology(ring_topology(n));
        let (outputs, _, _) =
            differential_programs("ringhop", &engine, || vec![RingHop::default(); n]);
        assert!(outputs.iter().all(|&ok| ok));
    }

    #[test]
    #[should_panic(expected = "TopologyViolated")]
    fn ring_topology_rejects_chords() {
        // A broadcast from any node crosses non-ring links and must be
        // rejected by the engine, proving the helper restricts topology.
        let n = 6;
        let engine = Engine::new(n).with_topology(ring_topology(n));
        engine
            .run((0..n).map(|_| MinId(0)).collect())
            .map(|_| ())
            .unwrap();
    }

    #[test]
    fn session_differential_composes_phases() {
        let g = crate::instances::Instance::new(crate::instances::Family::ErMedium, 14, 5).graph();
        let out = differential_session("two-phase", 14, |s| {
            let a = cc_graph_bfs(s, &g, 0);
            let b = cc_graph_bfs(s, &g, 1);
            (a, b)
        });
        assert_eq!(out.0.len(), 14);
    }

    /// Minimal BFS flood (testkit-local, so this module's self-test does
    /// not depend on `cc-paths`): distances from `src` by 1-bit waves.
    fn cc_graph_bfs(s: &mut Session, g: &cc_graph::Graph, src: usize) -> Vec<u64> {
        #[derive(Clone)]
        struct Flood {
            row: BitString,
            src: usize,
            dist: Option<u64>,
            frontier: bool,
        }
        impl NodeProgram for Flood {
            type Output = u64;
            fn step(
                &mut self,
                ctx: &NodeCtx,
                round: usize,
                inbox: &Inbox<'_>,
                outbox: &mut Outbox<'_>,
            ) -> Status<u64> {
                let me = ctx.id.index();
                if round == 0 {
                    if me == self.src {
                        self.dist = Some(0);
                        self.frontier = true;
                    }
                } else {
                    let mut newly = false;
                    for (u, _) in inbox.iter() {
                        let slot = if u.index() < me {
                            u.index()
                        } else {
                            u.index() - 1
                        };
                        if self.row.get(slot) && self.dist.is_none() {
                            self.dist = Some(round as u64);
                            newly = true;
                        }
                    }
                    self.frontier = newly;
                }
                if round >= ctx.n {
                    return Status::Halt(self.dist.unwrap_or(u64::MAX));
                }
                if self.frontier {
                    outbox.broadcast(&BitString::from_bits([true]));
                }
                Status::Continue
            }
        }
        let n = g.n();
        let programs = (0..n)
            .map(|v| Flood {
                row: g.input_row(NodeId::from(v)),
                src,
                dist: None,
                frontier: false,
            })
            .collect();
        s.run(programs).unwrap().outputs
    }
}
