//! Byzantine-conformance runners: the [`ByzantinePlan`] adversary must be
//! a pure function of `(seed, round, from, to)`, so a run with traitors is
//! just as schedule-independent as an honest one. This module mirrors
//! [`crate::faults`] for the stronger tier: the same plan, replayed under
//! every pool shape in [`POOL_SHAPES`] and every delivery backend in
//! [`BACKENDS`], must yield byte-identical outputs, [`RunStats`],
//! transcripts, the same [`FaultReport`], *and* the same
//! [`ByzantineReport`] event for event — and an empty plan must change
//! nothing at all.
//!
//! It also carries the tier's *negative* obligation:
//! [`equivocation_witness`] searches an all-to-all exchange's outputs for
//! two honest nodes that a single traitor told different stories — the
//! proof that per-link majorities (`RepeatBroadcast`) are forged by
//! equivocation and the quorum layer (`BrachaBroadcast`) is not optional.
//!
//! Every panic message carries the plan's label (e.g.
//! `byz[seed=7, traitors=1, garble=1]`) next to the protocol label, so a
//! failing conformance run names the exact adversary that reproduces it.

use cliquesim::{
    ByzantinePlan, ByzantineReport, Engine, FaultReport, NodeId, NodeProgram, RunStats, Transcript,
};
use std::fmt::Debug;

use crate::differential::{BACKENDS, POOL_SHAPES};

/// Everything a Byzantine differential compares: per-node outputs (`None`
/// for crashed nodes), accumulated stats, full transcripts, the link-fault
/// event log, and the Byzantine rewrite log.
pub type ByzantineRun<T> = (
    Vec<Option<T>>,
    RunStats,
    Vec<Transcript>,
    FaultReport,
    ByzantineReport,
);

/// Run node programs under `plan` on every pool shape with transcripts
/// forced on, asserting byte-identical outputs, stats, transcripts, fault
/// reports, and Byzantine reports. Returns the sequential run for further
/// auditing.
///
/// The factory is called once per shape and must produce identical
/// programs each time (pass a fixed seed in, like
/// [`crate::differential_programs`]).
pub fn differential_byzantine<P, M>(
    label: &str,
    base: &Engine,
    plan: &ByzantinePlan,
    mut make_programs: M,
) -> ByzantineRun<P::Output>
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    let mut reference: Option<ByzantineRun<P::Output>> = None;
    for &mode in BACKENDS.iter() {
        for &threads in POOL_SHAPES.iter() {
            let tag = format!("{label}@{} under {plan}", mode.tag());
            let engine = base
                .clone()
                .with_transcripts(true)
                .with_threads_exact(threads)
                .with_delivery(mode)
                .with_byzantine_plan(plan.clone());
            let out = engine
                .run_byzantine(make_programs())
                .unwrap_or_else(|e| panic!("{tag}: engine error at threads={threads}: {e}"));
            let transcripts = out.transcripts.expect("transcripts were requested");
            match &reference {
                None => {
                    reference = Some((
                        out.outputs,
                        out.stats,
                        transcripts,
                        out.faults,
                        out.byzantine,
                    ))
                }
                Some((out0, stats0, tr0, faults0, byz0)) => {
                    assert!(
                        *out0 == out.outputs,
                        "{tag}: outputs diverge at threads={threads}"
                    );
                    assert!(
                        *stats0 == out.stats,
                        "{tag}: RunStats diverge at threads={threads}: {:?} vs {stats0:?}",
                        out.stats
                    );
                    assert!(
                        *byz0 == out.byzantine,
                        "{tag}: Byzantine reports diverge at threads={threads}: {:?} vs {byz0:?}",
                        out.byzantine
                    );
                    assert!(
                        *faults0 == out.faults,
                        "{tag}: fault reports diverge at threads={threads}: {:?} vs {faults0:?}",
                        out.faults
                    );
                    assert!(
                        *tr0 == transcripts,
                        "{tag}: transcripts diverge at threads={threads}"
                    );
                }
            }
        }
    }
    reference.expect("BACKENDS and POOL_SHAPES are non-empty")
}

/// Assert the engine's transparency guarantee for the Byzantine tier:
/// attaching an *empty* [`ByzantinePlan`] changes nothing. Runs the
/// programs once with no plan and once with `ByzantinePlan::new(seed)` (no
/// traitors, no lies) on every pool shape, and requires byte-identical
/// outputs, stats, and transcripts — plus an empty rewrite log and zeroed
/// Byzantine counters.
pub fn assert_empty_byzantine_transparent<P, M>(label: &str, base: &Engine, mut make_programs: M)
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    let plan = ByzantinePlan::new(0);
    assert!(plan.is_empty(), "ByzantinePlan::new must start empty");
    for &threads in POOL_SHAPES.iter() {
        let bare = base
            .clone()
            .with_transcripts(true)
            .with_threads_exact(threads)
            .run(make_programs())
            .unwrap_or_else(|e| panic!("{label}: bare engine error at threads={threads}: {e}"));
        let planned = base
            .clone()
            .with_transcripts(true)
            .with_threads_exact(threads)
            .with_byzantine_plan(plan.clone())
            .run_byzantine(make_programs())
            .unwrap_or_else(|e| {
                panic!("{label}: empty-plan engine error at threads={threads}: {e}")
            });
        assert!(
            planned.byzantine.is_empty(),
            "{label}: empty plan produced rewrite events at threads={threads}"
        );
        assert!(
            bare.outputs
                .iter()
                .map(Some)
                .eq(planned.outputs.iter().map(|o| o.as_ref())),
            "{label}: empty plan changed outputs at threads={threads}"
        );
        assert!(
            bare.stats == planned.stats,
            "{label}: empty plan changed RunStats at threads={threads}: {:?} vs {:?}",
            planned.stats,
            bare.stats
        );
        assert!(
            bare.transcripts == planned.transcripts,
            "{label}: empty plan changed transcripts at threads={threads}"
        );
    }
}

/// Search an all-to-all exchange's outputs for an **equivocation witness**:
/// two honest nodes `a ≠ b` whose slots for some traitor `t` disagree —
/// i.e. a single traitor successfully told two honest nodes different
/// stories, each locally backed by a full per-link majority.
///
/// `outputs[v]` is node `v`'s decided view, one slot per peer (the shape
/// `RepeatBroadcast` emits); `None` outer slots (crashed nodes) are
/// skipped. Returns `(a, b, t)` for the first witness found, or `None` if
/// every pair of honest nodes agrees on every traitor.
pub fn equivocation_witness(
    outputs: &[Option<Vec<Option<u64>>>],
    plan: &ByzantinePlan,
) -> Option<(NodeId, NodeId, NodeId)> {
    let honest: Vec<usize> = (0..outputs.len())
        .filter(|v| !plan.is_traitor(NodeId::from(*v)) && outputs[*v].is_some())
        .collect();
    for t in plan.traitors() {
        for (i, &a) in honest.iter().enumerate() {
            for &b in &honest[i + 1..] {
                let (va, vb) = (&outputs[a], &outputs[b]);
                if let (Some(va), Some(vb)) = (va, vb) {
                    if va[t.index()] != vb[t.index()] {
                        return Some((NodeId::from(a), NodeId::from(b), *t));
                    }
                }
            }
        }
    }
    None
}

/// Shared `proptest` strategies over Byzantine adversary plans.
pub mod strategies {
    use super::*;
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    /// Strategy drawing a random [`ByzantinePlan`] with `f < n/3` traitors
    /// for an `n`-node clique, optionally sparing listed nodes.
    #[derive(Clone, Debug)]
    pub struct ArbTraitorPlan {
        n: usize,
        spare: Vec<NodeId>,
    }

    /// Any seed, any traitor count `f ∈ [0, ⌈n/3⌉ - 1]`, any mix of lie
    /// probabilities; nodes in `spare` are never traitors.
    pub fn arb_traitor_plan(n: usize, spare: &[NodeId]) -> ArbTraitorPlan {
        assert!(n >= 4, "need n ≥ 4 for a non-trivial traitor bound");
        ArbTraitorPlan {
            n,
            spare: spare.to_vec(),
        }
    }

    impl Strategy for ArbTraitorPlan {
        type Value = ByzantinePlan;
        fn sample(&self, rng: &mut TestRng) -> ByzantinePlan {
            let max_f = self.n.div_ceil(3) - 1;
            let f = rng.below(max_f as u64 + 1) as usize;
            // At least one lie kind is always on, so a sampled plan with
            // f > 0 traitors is never accidentally transparent.
            let garble = 1.0;
            let replay = (rng.below(100) as f64) / 100.0;
            let silence = (rng.below(50) as f64) / 100.0;
            ByzantinePlan::new(rng.next_u64() % 1_000_000)
                .with_random_traitors(self.n, f, &self.spare)
                .garble(garble)
                .replay(replay)
                .silence(silence)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{BitString, Inbox, NodeCtx, Outbox, Status};

    /// Three rounds of id gossip (same shape as the fault-module fixture):
    /// order-sensitive enough to notice any nondeterminism.
    #[derive(Clone)]
    struct Gossip {
        heard: Vec<u64>,
    }

    impl NodeProgram for Gossip {
        type Output = Vec<u64>;
        fn step(
            &mut self,
            ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<Vec<u64>> {
            for (u, m) in inbox.iter() {
                if let Ok(v) = m.reader().read_uint(ctx.id_width()) {
                    self.heard.push(u.0 as u64 * 1000 + v);
                }
            }
            if round < 3 {
                let mut m = BitString::new();
                m.push_uint(ctx.id.0 as u64, ctx.id_width());
                outbox.broadcast(&m);
                return Status::Continue;
            }
            Status::Halt(self.heard.clone())
        }
    }

    fn gossip(n: usize) -> Vec<Gossip> {
        (0..n).map(|_| Gossip { heard: Vec::new() }).collect()
    }

    #[test]
    fn byzantine_differential_is_stable_across_shapes() {
        // n = 15 ≥ 2·7, so the 7-worker pooled path really engages.
        let n = 15;
        let plan = ByzantinePlan::new(42)
            .with_random_traitors(n, 4, &[])
            .garble(0.6)
            .replay(0.3)
            .silence(0.1);
        let (outputs, stats, transcripts, faults, byz) =
            differential_byzantine("gossip", &Engine::new(n), &plan, || gossip(n));
        assert!(outputs.iter().all(|o| o.is_some()), "no one crashes here");
        assert!(stats.forged_messages > 0, "{plan}: nothing forged");
        assert!(faults.is_empty(), "no link-fault plan was attached");
        assert!(!byz.is_empty());
        assert_eq!(transcripts.len(), n);
    }

    #[test]
    fn empty_byzantine_plan_is_transparent_for_gossip() {
        let n = 10;
        assert_empty_byzantine_transparent("gossip", &Engine::new(n), || gossip(n));
    }

    #[test]
    fn witness_finds_a_planted_disagreement() {
        let plan = ByzantinePlan::new(0).traitor(NodeId(2)).garble(1.0);
        // Nodes 0 and 1 are honest but disagree about traitor 2.
        let outputs = vec![
            Some(vec![Some(0), Some(1), Some(7)]),
            Some(vec![Some(0), Some(1), Some(9)]),
            Some(vec![Some(0), Some(1), Some(2)]),
        ];
        assert_eq!(
            equivocation_witness(&outputs, &plan),
            Some((NodeId(0), NodeId(1), NodeId(2)))
        );
        // Agreement about the traitor → no witness.
        let agree = vec![
            Some(vec![Some(0), Some(1), Some(7)]),
            Some(vec![Some(0), Some(1), Some(7)]),
            Some(vec![Some(0), Some(1), Some(2)]),
        ];
        assert_eq!(equivocation_witness(&agree, &plan), None);
        // Disagreement between honest nodes about an *honest* node is not
        // an equivocation witness (that would be a link fault, not a lie).
        let honest_noise = vec![
            Some(vec![Some(0), Some(5), Some(7)]),
            Some(vec![Some(0), Some(6), Some(7)]),
            Some(vec![Some(0), Some(1), Some(2)]),
        ];
        assert_eq!(equivocation_witness(&honest_noise, &plan), None);
    }

    #[test]
    fn sampled_traitor_plans_respect_the_bound() {
        use proptest::strategy::Strategy;
        use proptest::test_runner::TestRng;
        let strat = strategies::arb_traitor_plan(9, &[NodeId(0)]);
        let mut rng = TestRng::deterministic("sampled_traitor_plans_respect_the_bound");
        for _ in 0..50 {
            let plan = strat.sample(&mut rng);
            assert!(3 * plan.f() < 9 + 3, "f = {} too large", plan.f());
            assert!(plan.f() <= 2, "⌈9/3⌉ - 1 = 2 is the cap");
            assert!(!plan.is_traitor(NodeId(0)), "spared node drafted");
        }
    }
}
