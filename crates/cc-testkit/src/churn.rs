//! Churn-conformance families: seed-addressed Poisson crash/rejoin
//! schedules for the engine's rejoin/state-sync tier.
//!
//! A [`ChurnCase`] is the churn twin of [`crate::RouteFaultCase`]: from
//! `(n, seed)` it derives a [`FaultPlan`] via
//! [`FaultPlan::with_random_churn`] (every node outside the spared set
//! walks a seeded crash/rejoin Markov chain) plus a deterministic demand
//! set for routing waves. Cases print as `churn[n=…, seed=…]` and every
//! judge panic starts with that label, so a failing conformance run names
//! the exact churn schedule that reproduces it — bit-identical on any
//! host, pool shape, or delivery backend.
//!
//! Two obligations are enforced on top of the generic faulted
//! differential:
//!
//! * **shape independence** — [`differential_churn`] replays the case
//!   under every pool shape in [`crate::POOL_SHAPES`] and every delivery
//!   backend in [`crate::BACKENDS`], asserting byte-identical outputs,
//!   stats, transcripts, and fault reports (rejoin state sync included);
//! * **ledger closure** — [`judge_churn_accounting`] cross-checks the
//!   [`FaultReport`] against the [`RunStats`] sync counters and the plan's
//!   downtime windows: every `Rejoined` event names a scheduled rejoin,
//!   the replayed window is exactly the downtime the plan implies, and the
//!   stats counters equal the event sums (nothing double- or un-counted).

use std::fmt;
use std::fmt::Debug;
use std::ops::Range;

use cc_routing::CrashSet;
use cliquesim::{
    BitString, Engine, FaultEvent, FaultPlan, FaultReport, NodeId, NodeProgram, RunStats,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::faults::{differential_faulted, FaultedRun};
use crate::routing::Demands;

/// A seed-addressed churn conformance case: `n` nodes under a Poisson
/// crash/rejoin schedule derived from `seed`. Prints as `churn[n=…,
/// seed=…]`; rebuilding the case from the label reproduces the schedule
/// bit for bit.
#[derive(Clone, Copy, Debug)]
pub struct ChurnCase {
    /// Clique size.
    pub n: usize,
    /// Seed driving the churn chain and the demand generator.
    pub seed: u64,
    /// Per-round crash probability for live nodes, in per mille.
    pub crash_per_mille: u32,
    /// Per-round rejoin probability for down nodes, in per mille.
    pub rejoin_per_mille: u32,
    /// Last round the churn chain is sampled at (crashes and rejoins all
    /// land in `1..=max_round`).
    pub max_round: usize,
}

impl ChurnCase {
    /// Build a case with the suite's default rates: 80‰ crash, 400‰
    /// rejoin, sampled over the first twelve rounds. Node 0 is spared so
    /// every case keeps at least one always-alive node (a broadcast source
    /// or routing anchor).
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 2, "a clique needs at least two nodes (n={n})");
        Self {
            n,
            seed,
            crash_per_mille: 80,
            rejoin_per_mille: 400,
            max_round: 12,
        }
    }

    /// Override the churn chain's rates and horizon.
    pub fn with_rates(
        mut self,
        crash_per_mille: u32,
        rejoin_per_mille: u32,
        max_round: usize,
    ) -> Self {
        self.crash_per_mille = crash_per_mille;
        self.rejoin_per_mille = rejoin_per_mille;
        self.max_round = max_round;
        self
    }

    /// The case's churn plan: a pure function of the seed, sparing node 0.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with_random_churn(
            self.n,
            self.crash_per_mille,
            self.rejoin_per_mille,
            self.max_round,
            &[NodeId(0)],
        )
    }

    /// The conservative whole-run crash set (every node the plan ever
    /// kills, recoveries ignored) — what a single-wave router consumes.
    pub fn crash_set(&self) -> CrashSet {
        CrashSet::from_plan(&self.plan())
    }

    /// The round-aware crash set for one routing wave: nodes whose
    /// crash/rejoin pair completed strictly before the window are
    /// re-admitted (see `CrashSet::from_plan_window`).
    pub fn crash_set_for(&self, rounds: Range<usize>) -> CrashSet {
        CrashSet::from_plan_window(&self.plan(), rounds)
    }

    /// The case's deterministic demand set, in the same shape as
    /// [`crate::RouteFaultCase::demands`]: every node sends 0–3 payloads
    /// of 0–40 bits to seeded destinations. Dead endpoints are included on
    /// purpose — the router must report them, not require pre-filtering.
    pub fn demands(&self) -> Demands {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x6368_7572_u64);
        let n = self.n;
        let mut demands: Demands = vec![Vec::new(); n];
        for (v, list) in demands.iter_mut().enumerate() {
            for _ in 0..rng.gen_range(0..4) {
                let dst = (v + rng.gen_range(1..n)) % n;
                let len = rng.gen_range(0..40);
                let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                list.push((NodeId::from(dst), payload));
            }
        }
        demands
    }
}

impl fmt::Display for ChurnCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "churn[n={}, seed={}]", self.n, self.seed)
    }
}

/// The churn sweep CI and the conformance suites iterate: a small corpus
/// of cases spanning clique sizes (including `n = 15`, large enough for
/// the widest pool shape to genuinely engage) and seeds.
pub fn churn_corpus() -> Vec<ChurnCase> {
    let mut cases = Vec::new();
    for &n in &[8usize, 12, 15] {
        for seed in 1..=3u64 {
            cases.push(ChurnCase::new(n, seed));
        }
    }
    cases
}

/// Replay the case's plan under every delivery backend and pool shape
/// with transcripts forced on, asserting byte-identical outputs, stats,
/// transcripts, and fault reports. Panic messages carry the replayable
/// `churn[n=…, seed=…]` label. Returns the reference run for judging.
pub fn differential_churn<P, M>(
    case: &ChurnCase,
    base: &Engine,
    make_programs: M,
) -> FaultedRun<P::Output>
where
    P: NodeProgram,
    P::Output: PartialEq + Debug,
    M: FnMut() -> Vec<P>,
{
    differential_faulted(&case.to_string(), base, &case.plan(), make_programs)
}

/// Close the churn ledger: every `Rejoined` event in `report` must name a
/// rejoin the plan schedules, replaying exactly the downtime window the
/// plan implies, and the [`RunStats`] sync counters must equal the event
/// sums. `label` prefixes every panic message.
pub fn judge_churn_accounting(
    label: &str,
    plan: &FaultPlan,
    stats: &RunStats,
    report: &FaultReport,
) {
    let mut crashed = 0u64;
    let mut rejoined = 0u64;
    let (mut rounds, mut messages, mut bits) = (0u64, 0u64, 0u64);
    for event in &report.events {
        match event {
            FaultEvent::Crashed { .. } => crashed += 1,
            FaultEvent::Rejoined {
                node,
                round,
                sync_rounds,
                sync_messages,
                sync_bits,
            } => {
                rejoined += 1;
                rounds += sync_rounds;
                messages += sync_messages;
                bits += sync_bits;
                let window = plan
                    .downtime(*node)
                    .into_iter()
                    .find(|&(_, e)| e == *round)
                    .unwrap_or_else(|| {
                        panic!("{label}: rejoin of node {node:?} at round {round} is unscheduled")
                    });
                assert_eq!(
                    *sync_rounds,
                    (window.1 - window.0) as u64,
                    "{label}: node {node:?} replayed a window of the wrong width"
                );
            }
            _ => {}
        }
    }
    assert_eq!(
        stats.dead_nodes, crashed,
        "{label}: dead_nodes ≠ Crashed events"
    );
    assert_eq!(
        stats.rejoined_nodes, rejoined,
        "{label}: rejoined_nodes ≠ Rejoined events"
    );
    assert_eq!(
        stats.sync_rounds, rounds,
        "{label}: sync_rounds ≠ event sum"
    );
    assert_eq!(
        stats.sync_messages, messages,
        "{label}: sync_messages ≠ event sum"
    );
    assert_eq!(stats.sync_bits, bits, "{label}: sync_bits ≠ event sum");
}

#[cfg(test)]
mod tests {
    use super::*;
    use cliquesim::{sync_overhead, Inbox, NodeCtx, Outbox, Status};

    /// Broadcast-until-`horizon` chatter: every live node broadcasts a
    /// one-bit beacon each round and counts what it hears, so churn shows
    /// up in both the outputs and the sync ledger.
    #[derive(Clone)]
    struct Chatter {
        horizon: usize,
        heard: u64,
    }

    impl NodeProgram for Chatter {
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeCtx,
            round: usize,
            inbox: &Inbox<'_>,
            outbox: &mut Outbox<'_>,
        ) -> Status<u64> {
            self.heard += inbox.iter().count() as u64;
            if round < self.horizon {
                let mut m = BitString::new();
                m.push_uint(1, 1);
                outbox.broadcast(&m);
                return Status::Continue;
            }
            Status::Halt(self.heard)
        }
    }

    fn chatter(n: usize, horizon: usize) -> Vec<Chatter> {
        (0..n).map(|_| Chatter { horizon, heard: 0 }).collect()
    }

    #[test]
    fn case_labels_are_replayable() {
        let case = ChurnCase::new(12, 7);
        assert_eq!(case.to_string(), "churn[n=12, seed=7]");
        assert_eq!(case.plan(), ChurnCase::new(12, 7).plan());
        assert_eq!(case.demands(), ChurnCase::new(12, 7).demands());
    }

    #[test]
    fn corpus_cases_actually_churn() {
        // Every corpus case must schedule at least one completed
        // crash/rejoin cycle — otherwise the sweep tests nothing.
        for case in churn_corpus() {
            let plan = case.plan();
            assert!(
                sync_overhead(case.n, &plan, 8).rejoins > 0,
                "{case}: no rejoin fires under {plan}"
            );
        }
    }

    #[test]
    fn churn_differential_is_stable_and_accounted() {
        // n = 15 ≥ 2·7, so the widest pool shape genuinely engages.
        let case = ChurnCase::new(15, 2);
        let (outputs, stats, _, report) =
            differential_churn(&case, &Engine::new(15), || chatter(15, 14));
        judge_churn_accounting(&case.to_string(), &case.plan(), &stats, &report);
        assert!(stats.rejoined_nodes > 0, "{case}: nothing rejoined");
        assert!(
            stats.sync_messages > 0,
            "{case}: state sync carried nothing"
        );
        assert!(outputs[0].is_some(), "spared node 0 must survive");
    }

    #[test]
    fn wave_windows_readmit_recovered_nodes() {
        // A node whose downtime completes inside wave 1 must be absent
        // from wave 2's crash set but present in the conservative one.
        let case = ChurnCase::new(12, 1);
        let plan = case.plan();
        let whole = case.crash_set();
        let late = case.crash_set_for(case.max_round + 1..usize::MAX);
        assert!(late.len() < whole.len(), "{case}: no node was re-admitted");
        for v in 0..case.n {
            let node = NodeId::from(v);
            assert_eq!(
                late.is_dead(node),
                !plan.alive_at(node, case.max_round + 1),
                "{case}: wave membership disagrees with the plan for node {v}"
            );
        }
    }
}
