//! Routed-payload oracles: conformance obligations for `cc-routing`'s
//! fault-aware planning layer.
//!
//! A [`RouteFaultCase`] is a seed-addressed pair of (deterministic demand
//! set, seeded crash plan), printed as `route-fault[n=…, f=…, seed=…]` —
//! the same replayable-label discipline as `plan[…]` and `family[…]`
//! labels: every judge panic starts with the case label, and rebuilding
//! the case from `(n, f, seed)` reproduces the failure bit for bit on any
//! host.
//!
//! Three obligations are enforced:
//!
//! * **delivery to survivors** — [`judge_routed_delivery`] checks that a
//!   [`RoutedOutcome`] delivers *every* demand between surviving endpoints
//!   (exactly once, in per-source order), reports *every* dead-endpoint
//!   demand as a structured [`cc_routing::Undeliverable`] record with the
//!   right reason, and leaves `None` slots exactly for crashed nodes;
//! * **pool-shape independence** — [`differential_route_faulted`] and
//!   [`differential_route_balanced_faulted`] replay the same case under
//!   every pool shape in [`POOL_SHAPES`], asserting identical deliveries,
//!   undeliverable records, [`RunStats`], and fault reports;
//! * **transparency** — [`assert_empty_crash_transparent`] proves an empty
//!   crash set byte-identical to the unfaulted schedule (outputs *and*
//!   wire cost) across pool shapes, for both the direct and the balanced
//!   scheduler.

use std::fmt;

use cc_routing::{
    route, route_balanced, route_balanced_faulted, route_faulted, CrashSet, Delivered,
    DeliveryFailure, RoutedOutcome,
};
use cliquesim::{BitString, Engine, FaultPlan, NodeId, RunStats, Session};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::differential::POOL_SHAPES;

/// One demand list per node: the input shape of `cc_routing::route`.
pub type Demands = Vec<Vec<(NodeId, BitString)>>;

/// A seed-addressed crash-routing conformance case: `n` nodes, a
/// ChaCha-derived demand set, and a [`FaultPlan`] crashing `f` seeded
/// victims. Prints as `route-fault[n=…, f=…, seed=…]`.
#[derive(Clone, Copy, Debug)]
pub struct RouteFaultCase {
    /// Clique size.
    pub n: usize,
    /// Number of crash victims the plan schedules.
    pub f: usize,
    /// Seed driving both the demand generator and the crash plan.
    pub seed: u64,
}

impl RouteFaultCase {
    /// Build a case; `f` victims must leave at least two survivors.
    pub fn new(n: usize, f: usize, seed: u64) -> Self {
        assert!(n >= f + 2, "need at least two survivors (n={n}, f={f})");
        Self { n, f, seed }
    }

    /// The case's crash plan: `f` seeded victims, each dying within the
    /// first few rounds.
    pub fn plan(&self) -> FaultPlan {
        FaultPlan::new(self.seed).with_random_crashes(self.n, self.f, 3, &[])
    }

    /// The crash set the plan implies (what a fault-aware router consumes).
    pub fn crash_set(&self) -> CrashSet {
        CrashSet::from_plan(&self.plan())
    }

    /// The case's deterministic demand set: every node sends 0–3 payloads
    /// of 0–40 bits to seeded destinations (dead endpoints included — the
    /// router must *report* those, not require the caller to pre-filter).
    pub fn demands(&self) -> Demands {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7075_7465_u64);
        let n = self.n;
        let mut demands: Demands = vec![Vec::new(); n];
        for (v, list) in demands.iter_mut().enumerate() {
            for _ in 0..rng.gen_range(0..4) {
                let dst = (v + rng.gen_range(1..n)) % n;
                let len = rng.gen_range(0..40);
                let payload: BitString = (0..len).map(|_| rng.gen_bool(0.5)).collect();
                list.push((NodeId::from(dst), payload));
            }
        }
        demands
    }
}

impl fmt::Display for RouteFaultCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route-fault[n={}, f={}, seed={}]",
            self.n, self.f, self.seed
        )
    }
}

/// Judge a [`RoutedOutcome`] against the demand set and crash set that
/// produced it (see module docs for the three checks). `label` prefixes
/// every panic message.
pub fn judge_routed_delivery(
    label: &str,
    demands: &Demands,
    crash: &CrashSet,
    out: &RoutedOutcome,
) {
    let n = demands.len();
    assert_eq!(out.delivered.len(), n, "{label}: wrong delivery arity");

    // Slot shape: None exactly for crashed nodes.
    for v in 0..n {
        let dead = crash.is_dead(NodeId::from(v));
        assert_eq!(
            out.delivered[v].is_none(),
            dead,
            "{label}: node {v} delivery slot disagrees with the crash set"
        );
    }

    // Expected survivor traffic, keyed (dst, src) with per-source order;
    // expected undeliverable records in demand order.
    let mut expect_delivered: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    let mut expect_undeliverable = Vec::new();
    for (v, list) in demands.iter().enumerate() {
        let source = NodeId::from(v);
        for (dst, payload) in list {
            if crash.is_dead(source) {
                expect_undeliverable.push((source, *dst, payload, DeliveryFailure::SourceCrashed));
            } else if crash.is_dead(*dst) {
                expect_undeliverable.push((
                    source,
                    *dst,
                    payload,
                    DeliveryFailure::DestinationCrashed,
                ));
            } else {
                expect_delivered[dst.index()].push((source, payload.clone()));
            }
        }
    }

    // Survivor deliveries: compare as per-source ordered multisets (the
    // scheduler may interleave sources, but per-source order is promised).
    let key = |l: &[(NodeId, BitString)]| {
        let mut m: Vec<(usize, Vec<BitString>)> = Vec::new();
        for (src, p) in l {
            match m.iter_mut().find(|(s, _)| *s == src.index()) {
                Some((_, ps)) => ps.push(p.clone()),
                None => m.push((src.index(), vec![p.clone()])),
            }
        }
        m.sort_by_key(|(s, _)| *s);
        m
    };
    for (v, slot) in out.delivered.iter().enumerate() {
        let Some(delivered) = slot else { continue };
        assert_eq!(
            key(delivered),
            key(&expect_delivered[v]),
            "{label}: node {v} survivor traffic mismatch"
        );
    }

    // Undeliverable records: exactly the dead-endpoint demands.
    assert_eq!(
        out.undeliverable.len(),
        expect_undeliverable.len(),
        "{label}: wrong number of undeliverable records"
    );
    for u in &out.undeliverable {
        let hit = expect_undeliverable.iter().position(|(s, d, p, r)| {
            *s == u.source && *d == u.destination && **p == u.payload && *r == u.reason
        });
        assert!(
            hit.is_some(),
            "{label}: unexpected undeliverable record {:?}→{:?} ({:?})",
            u.source,
            u.destination,
            u.reason
        );
    }
}

/// What a routing differential compares: the routed outcome plus the
/// session-level [`RunStats`] (rounds, bits, fault counters).
pub type RoutedRun = (RoutedOutcome, RunStats);

fn differential_routed<F>(label: &str, base: &Engine, plan: &FaultPlan, run: F) -> RoutedRun
where
    F: Fn(&mut Session) -> RoutedOutcome,
{
    let tag = format!("{label} under {plan}");
    let mut reference: Option<RoutedRun> = None;
    for &threads in POOL_SHAPES.iter() {
        let engine = base
            .clone()
            .with_threads_exact(threads)
            .with_fault_plan(plan.clone());
        let mut session = Session::new(engine);
        let out = run(&mut session);
        let stats = session.stats().clone();
        match &reference {
            None => reference = Some((out, stats)),
            Some((out0, stats0)) => {
                assert!(
                    out0.delivered == out.delivered,
                    "{tag}: deliveries diverge at threads={threads}"
                );
                assert!(
                    out0.undeliverable == out.undeliverable,
                    "{tag}: undeliverable records diverge at threads={threads}"
                );
                assert!(
                    out0.report == out.report,
                    "{tag}: fault reports diverge at threads={threads}"
                );
                assert!(
                    *stats0 == stats,
                    "{tag}: RunStats diverge at threads={threads}: {stats:?} vs {stats0:?}"
                );
            }
        }
    }
    reference.expect("POOL_SHAPES is non-empty")
}

/// Run `route_faulted` on a case's demands under its crash plan on every
/// pool shape, asserting identical deliveries, undeliverable records,
/// fault reports, and stats. Returns the reference run for judging.
pub fn differential_route_faulted(label: &str, base: &Engine, case: &RouteFaultCase) -> RoutedRun {
    let plan = case.plan();
    let crash = case.crash_set();
    differential_routed(label, base, &plan, |session| {
        route_faulted(session, case.demands(), &crash)
            .unwrap_or_else(|e| panic!("{label} under {plan}: route_faulted failed: {e}"))
    })
}

/// The balanced-scheduler twin of [`differential_route_faulted`].
pub fn differential_route_balanced_faulted(
    label: &str,
    base: &Engine,
    case: &RouteFaultCase,
) -> RoutedRun {
    let plan = case.plan();
    let crash = case.crash_set();
    differential_routed(label, base, &plan, |session| {
        route_balanced_faulted(session, case.demands(), &crash)
            .unwrap_or_else(|e| panic!("{label} under {plan}: route_balanced_faulted failed: {e}"))
    })
}

/// Assert the planning layer's transparency guarantee, mirroring
/// `assert_empty_plan_transparent`: with an empty crash set (and an empty
/// fault plan), `route_faulted` must be byte-identical to `route`, and
/// `route_balanced_faulted` to `route_balanced` — same deliveries, same
/// rounds, same bits — on every pool shape.
pub fn assert_empty_crash_transparent<M>(label: &str, base: &Engine, mut make_demands: M)
where
    M: FnMut() -> Demands,
{
    let empty_plan = FaultPlan::new(0);
    let none = CrashSet::new();
    for &threads in POOL_SHAPES.iter() {
        let bare = || Session::new(base.clone().with_threads_exact(threads));
        let planned = || {
            Session::new(
                base.clone()
                    .with_threads_exact(threads)
                    .with_fault_plan(empty_plan.clone()),
            )
        };

        // Direct scheduler.
        let mut s1 = bare();
        let plain = route(&mut s1, make_demands())
            .unwrap_or_else(|e| panic!("{label}: route failed at threads={threads}: {e}"));
        let mut s2 = planned();
        let faulted = route_faulted(&mut s2, make_demands(), &none)
            .unwrap_or_else(|e| panic!("{label}: route_faulted failed at threads={threads}: {e}"));
        assert!(
            faulted.undeliverable.is_empty() && faulted.report.is_empty(),
            "{label}: empty crash set produced fault artefacts at threads={threads}"
        );
        let unwrapped: Vec<Delivered> = faulted
            .delivered
            .into_iter()
            .map(|d| d.expect("no node is dead"))
            .collect();
        assert!(
            plain == unwrapped,
            "{label}: empty crash set changed route deliveries at threads={threads}"
        );
        assert!(
            s1.stats() == s2.stats(),
            "{label}: empty crash set changed route wire cost at threads={threads}: {:?} vs {:?}",
            s2.stats(),
            s1.stats()
        );

        // Balanced scheduler.
        let mut s3 = bare();
        let plain = route_balanced(&mut s3, make_demands())
            .unwrap_or_else(|e| panic!("{label}: route_balanced failed at threads={threads}: {e}"));
        let mut s4 = planned();
        let faulted = route_balanced_faulted(&mut s4, make_demands(), &none).unwrap_or_else(|e| {
            panic!("{label}: route_balanced_faulted failed at threads={threads}: {e}")
        });
        assert!(
            faulted.undeliverable.is_empty() && faulted.report.is_empty(),
            "{label}: empty crash set produced balanced fault artefacts at threads={threads}"
        );
        let unwrapped: Vec<Delivered> = faulted
            .delivered
            .into_iter()
            .map(|d| d.expect("no node is dead"))
            .collect();
        assert!(
            plain == unwrapped,
            "{label}: empty crash set changed balanced deliveries at threads={threads}"
        );
        assert!(
            s3.stats() == s4.stats(),
            "{label}: empty crash set changed balanced wire cost at threads={threads}: {:?} vs {:?}",
            s4.stats(),
            s3.stats()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_labels_are_replayable() {
        let case = RouteFaultCase::new(9, 2, 7);
        assert_eq!(case.to_string(), "route-fault[n=9, f=2, seed=7]");
        assert_eq!(case.demands(), RouteFaultCase::new(9, 2, 7).demands());
        assert_eq!(case.plan(), RouteFaultCase::new(9, 2, 7).plan());
        assert_eq!(case.crash_set().len(), 2);
    }

    #[test]
    fn judge_accepts_a_conforming_run() {
        let case = RouteFaultCase::new(9, 2, 3);
        let (out, _) = differential_route_faulted("routing", &Engine::new(9), &case);
        judge_routed_delivery(&case.to_string(), &case.demands(), &case.crash_set(), &out);
    }

    #[test]
    fn transparency_holds_for_a_seeded_demand_set() {
        let case = RouteFaultCase::new(7, 0, 5);
        assert_empty_crash_transparent("routing", &Engine::new(7), || case.demands());
    }
}
