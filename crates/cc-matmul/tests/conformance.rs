//! Testkit conformance: every distributed product is re-judged by an
//! independent oracle and must be identical across engine pool shapes.
//! Failure messages embed the instance label (family, n, seed).

use cc_matmul::{mm_naive_broadcast, mm_three_d, BoolSemiring, TropicalSemiring, TROPICAL_INF};
use cc_testkit::instances::strategies::arb_instance;
use cc_testkit::{corpus, differential_session, oracle};
use proptest::prelude::*;

fn adjacency(g: &cc_graph::Graph) -> Vec<Vec<bool>> {
    let n = g.n();
    (0..n)
        .map(|i| (0..n).map(|j| g.has_edge(i, j)).collect())
        .collect()
}

fn tropical_rows(g: &cc_graph::Graph) -> Vec<Vec<u64>> {
    let n = g.n();
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0
                    } else if g.has_edge(i, j) {
                        1
                    } else {
                        TROPICAL_INF
                    }
                })
                .collect()
        })
        .collect()
}

#[test]
fn boolean_squaring_conforms_across_corpus_and_pool_shapes() {
    for inst in corpus(&[9, 16], &[1]) {
        let g = inst.graph();
        let a = adjacency(&g);
        let got = differential_session(&inst.label(), g.n(), |s| {
            mm_three_d(s, &BoolSemiring, &a, &a).unwrap()
        });
        oracle::judge_matmul(
            &inst.label(),
            &a,
            &a,
            &got,
            false,
            |x, y| *x || *y,
            |x, y| *x && *y,
        );
    }
}

#[test]
fn tropical_naive_broadcast_conforms() {
    for inst in corpus(&[9, 12], &[2]) {
        let g = inst.graph();
        let sr = TropicalSemiring::for_max_value(2);
        let d = tropical_rows(&g);
        let got = differential_session(&inst.label(), g.n(), |s| {
            mm_naive_broadcast(s, &sr, &d, &d).unwrap()
        });
        oracle::judge_matmul(
            &inst.label(),
            &d,
            &d,
            &got,
            TROPICAL_INF,
            |x, y| *x.min(y),
            |x, y| x.saturating_add(*y).min(TROPICAL_INF),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_instances_square_correctly(inst in arb_instance(5, 14)) {
        let g = inst.graph();
        let a = adjacency(&g);
        let got = differential_session(&inst.label(), g.n(), |s| {
            mm_three_d(s, &BoolSemiring, &a, &a).unwrap()
        });
        oracle::judge_matmul(
            &inst.label(),
            &a,
            &a,
            &got,
            false,
            |x, y| *x || *y,
            |x, y| *x && *y,
        );
    }
}
