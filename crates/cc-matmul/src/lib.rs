//! # cc-matmul — distributed semiring matrix multiplication
//!
//! Matrix multiplication is the workhorse of the polynomial-complexity
//! region of Figure 1 in Korhonen & Suomela (SPAA 2018): Boolean MM drives
//! triangle detection and transitive closure, `(min,+)` ("tropical") MM
//! drives APSP, and semiring MM in general has exponent `δ ≤ 1/3` by the 3D
//! algorithm of Censor-Hillel et al. \[10\].
//!
//! * [`semiring`] defines the carrier semirings and their bit-exact wire
//!   encodings;
//! * [`distributed`] implements the `O(n^{1/3})`-round 3D algorithm
//!   ([`mm_three_d`]) and the `O(n)`-round broadcast baseline
//!   ([`mm_naive_broadcast`]);
//! * [`sparse`] implements the density-aware tier (Le Gall,
//!   arXiv:1608.02674): nonzero-count gossip, header-free sparse triple
//!   redistribution ([`mm_sparse`]), the [`MmStrategy`] selector, and the
//!   exact analytic ledger [`mm_sparse_overhead`].

#![warn(missing_docs)]
// Index-driven loops over multiple parallel per-node arrays are the
// dominant shape in this codebase; the iterator rewrites clippy suggests
// obscure the node-id arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod distributed;
pub mod semiring;
pub mod sparse;

pub use distributed::{mm_naive_broadcast, mm_three_d, Blocking, MatmulError};
pub use semiring::{
    mm_local, BoolSemiring, Matrix, RingI64, Semiring, TropicalSemiring, TROPICAL_INF,
};
pub use sparse::{mm_sparse, mm_sparse_overhead, mm_with_strategy, MmRun, MmStrategy};
