//! Distributed matrix multiplication on the congested clique.
//!
//! Implements the semiring algorithm of Censor-Hillel, Kaski, Korhonen,
//! Lenzen, Paz & Suomela (PODC 2015) — reference \[10\] of the paper — which
//! Figure 1 uses as the upper bound `δ(semiring MM) ≤ 1/3`:
//!
//! * [`mm_three_d`] — the "3D" algorithm: the `t³ = n` block products of a
//!   `t × t` blocking (`t = n^{1/3}`) are assigned one per node; inputs are
//!   redistributed with balanced routing (`O(n^{1/3})` rounds), block
//!   products are computed locally, and partial results are summed at the
//!   row owners.
//! * [`mm_naive_broadcast`] — the folklore `O(n)`-round baseline: everyone
//!   broadcasts their rows, everyone multiplies locally.
//!
//! Input/output convention (distributed fidelity): node `v` holds row `v`
//! of each input matrix and ends with row `v` of the product.
//!
//! The paper's stronger bound for *ring* MM (`1 − 2/ω`) relies on fast
//! rectangular multiplication tensors; that algebraic machinery is out of
//! scope (see DESIGN.md substitutions) — `RingI64` runs on the same 3D
//! schedule at exponent 1/3.

use cliquesim::{BitString, NodeId, Session};

use cc_routing::{route_balanced, RouteError};

use crate::semiring::{Matrix, Semiring};

/// Errors from the distributed multipliers.
#[derive(Debug)]
pub enum MatmulError {
    /// Routing/simulation failure.
    Route(RouteError),
    /// Inputs are not square / consistent.
    Shape(String),
    /// A payload failed to decode (harness bug).
    Decode(cliquesim::DecodeError),
}

impl std::fmt::Display for MatmulError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatmulError::Route(e) => write!(f, "matmul routing error: {e}"),
            MatmulError::Shape(s) => write!(f, "matmul shape error: {s}"),
            MatmulError::Decode(e) => write!(f, "matmul decode error: {e}"),
        }
    }
}

impl std::error::Error for MatmulError {}

impl From<RouteError> for MatmulError {
    fn from(e: RouteError) -> Self {
        MatmulError::Route(e)
    }
}

impl From<cliquesim::DecodeError> for MatmulError {
    fn from(e: cliquesim::DecodeError) -> Self {
        MatmulError::Decode(e)
    }
}

pub(crate) fn check_shapes<T>(n: usize, a: &[Vec<T>], b: &[Vec<T>]) -> Result<(), MatmulError> {
    if a.len() != n || b.len() != n {
        return Err(MatmulError::Shape(format!(
            "expected {n} rows, got A:{} B:{}",
            a.len(),
            b.len()
        )));
    }
    for (i, r) in a.iter().chain(b.iter()).enumerate() {
        if r.len() != n {
            return Err(MatmulError::Shape(format!(
                "row {i} has length {} (want {n})",
                r.len()
            )));
        }
    }
    Ok(())
}

pub(crate) fn encode_entries<S: Semiring>(
    sr: &S,
    entries: impl IntoIterator<Item = S::Elem>,
) -> BitString {
    let mut out = BitString::new();
    for e in entries {
        sr.encode(e, &mut out);
    }
    out
}

pub(crate) fn decode_entries<S: Semiring>(
    sr: &S,
    bits: &BitString,
    count: usize,
) -> Result<Vec<S::Elem>, MatmulError> {
    let mut r = bits.reader();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(sr.decode(&mut r)?);
    }
    r.expect_end().map_err(MatmulError::Decode)?;
    Ok(out)
}

/// The blocking used by the 3D algorithm.
#[derive(Clone, Copy, Debug)]
pub struct Blocking {
    /// Number of bands per axis, `t = ⌊n^{1/3}⌋`.
    pub t: usize,
    /// Vertices per band (last band may be smaller).
    pub band_size: usize,
    n: usize,
}

impl Blocking {
    /// Blocking for an `n`-node clique.
    pub fn for_n(n: usize) -> Self {
        let mut t = 1;
        while (t + 1) * (t + 1) * (t + 1) <= n {
            t += 1;
        }
        Self {
            t,
            band_size: n.div_ceil(t),
            n,
        }
    }

    /// Band of vertex `v`.
    pub fn band(&self, v: usize) -> usize {
        (v / self.band_size).min(self.t - 1)
    }

    /// The vertices of band `i`, in increasing order.
    pub fn members(&self, i: usize) -> std::ops::Range<usize> {
        let start = i * self.band_size;
        let end = if i + 1 == self.t {
            self.n
        } else {
            ((i + 1) * self.band_size).min(self.n)
        };
        start..end
    }

    /// The worker node for block triple `(i, j, k)`.
    pub fn worker(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.t + j) * self.t + k
    }

    /// Inverse of [`Blocking::worker`]: `Some((i, j, k))` if node `w` is a
    /// worker.
    pub fn triple(&self, w: usize) -> Option<(usize, usize, usize)> {
        let t = self.t;
        if w >= t * t * t {
            return None;
        }
        Some((w / (t * t), (w / t) % t, w % t))
    }
}

/// The Censor-Hillel et al. 3D semiring multiplication.
///
/// `a_rows[v]` / `b_rows[v]` are node `v`'s rows of the inputs; returns node
/// `v`'s row of `A·B`. Costs `O(n^{1/3} · w/B)` rounds for entry width `w`
/// and bandwidth `B` (so `O(n^{1/3})` at the model's `w = B = ⌈log₂ n⌉`).
pub fn mm_three_d<S: Semiring>(
    session: &mut Session,
    sr: &S,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<Vec<Vec<S::Elem>>, MatmulError> {
    let n = session.n();
    check_shapes(n, a_rows, b_rows)?;
    let bl = Blocking::for_n(n);
    let t = bl.t;

    // ---------------- Phase 1: distribute blocks to workers --------------
    // Node u contributes row u of A to blocks (band(u), ·) and row u of B to
    // blocks (band(u), ·) on the B side. For every worker (i, j, k):
    //   - needs A[band i rows, band k cols]: row-holders u ∈ band i send
    //     A[u, band k];
    //   - needs B[band k rows, band j cols]: row-holders u ∈ band k send
    //     B[u, band j].
    // Payload order (A first, then B) disambiguates the i == k case.
    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for u in 0..n {
        let bu = bl.band(u);
        for j in 0..t {
            for k in 0..t {
                // A-chunk to worker (bu, j, k).
                let w = bl.worker(bu, j, k);
                let payload = encode_entries(sr, bl.members(k).map(|c| a_rows[u][c]));
                if w == u {
                    // Local hand-off handled below by reading own rows.
                } else {
                    demands[u].push((NodeId::from(w), payload));
                }
            }
        }
        for i in 0..t {
            for j in 0..t {
                // B-chunk to worker (i, j, bu).
                let w = bl.worker(i, j, bu);
                let payload = encode_entries(sr, bl.members(j).map(|c| b_rows[u][c]));
                if w == u {
                    // Local hand-off.
                } else {
                    demands[u].push((NodeId::from(w), payload));
                }
            }
        }
    }
    let delivered = route_balanced(session, demands)?;

    // Each worker assembles its two blocks.
    // a_block[r - band_start][c_idx], rows ordered by sender id.
    let mut products: Vec<Option<Matrix<S::Elem>>> = vec![None; n];
    let mut row_ranges: Vec<(usize, usize, usize)> = Vec::new(); // (worker, i, j)
    for w in 0..n {
        let Some((i, j, k)) = bl.triple(w) else {
            continue;
        };
        let rows_i: Vec<usize> = bl.members(i).collect();
        let rows_k: Vec<usize> = bl.members(k).collect();
        let cols_k = rows_k.len();
        let cols_j = bl.members(j).len();

        // Collect payloads per sender in arrival order.
        let mut from: Vec<Vec<&BitString>> = vec![Vec::new(); n];
        for (src, payload) in &delivered[w] {
            from[src.index()].push(payload);
        }

        // A block: one payload from each u ∈ band i (A sent before B, so
        // it is the first payload when both were sent).
        let mut a_block: Vec<Vec<S::Elem>> = Vec::with_capacity(rows_i.len());
        for &u in &rows_i {
            let row = if u == w {
                bl.members(k).map(|c| a_rows[u][c]).collect()
            } else {
                let payload = from[u]
                    .first()
                    .ok_or_else(|| MatmulError::Shape(format!("worker {w} missing A row {u}")))?;
                decode_entries(sr, payload, cols_k)?
            };
            a_block.push(row);
        }
        // B block: one payload from each u ∈ band k (the last payload).
        let mut b_block: Vec<Vec<S::Elem>> = Vec::with_capacity(rows_k.len());
        for &u in &rows_k {
            let row = if u == w {
                bl.members(j).map(|c| b_rows[u][c]).collect()
            } else {
                let payload = from[u]
                    .last()
                    .ok_or_else(|| MatmulError::Shape(format!("worker {w} missing B row {u}")))?;
                decode_entries(sr, payload, cols_j)?
            };
            b_block.push(row);
        }

        // Local block product P = A_ik · B_kj.
        let mut p = Matrix::filled(rows_i.len().max(cols_j), sr.zero());
        for (ri, _) in rows_i.iter().enumerate() {
            for cj in 0..cols_j {
                let mut acc = sr.zero();
                for l in 0..cols_k {
                    acc = sr.add(acc, sr.mul(a_block[ri][l], b_block[l][cj]));
                }
                p.set(ri, cj, acc);
            }
        }
        products[w] = Some(p);
        row_ranges.push((w, i, j));
    }

    // -------------- Phase 2: ship partial rows to row owners -------------
    let mut demands2: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    let mut local_partials: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); n]; // (worker, bits)
    for &(w, i, j) in &row_ranges {
        let p = products[w].as_ref().expect("worker has product");
        let cols_j = bl.members(j).len();
        for (ri, r) in bl.members(i).enumerate() {
            let payload = encode_entries(sr, (0..cols_j).map(|c| p.get(ri, c)));
            if r == w {
                local_partials[r].push((w, payload));
            } else {
                demands2[w].push((NodeId::from(r), payload));
            }
        }
    }
    let delivered2 = route_balanced(session, demands2)?;

    // Row owners sum partials.
    let mut c_rows: Vec<Vec<S::Elem>> = Vec::with_capacity(n);
    for r in 0..n {
        let mut row = vec![sr.zero(); n];
        let mut apply = |worker: usize, payload: &BitString| -> Result<(), MatmulError> {
            let (_, j, _) = bl
                .triple(worker)
                .ok_or_else(|| MatmulError::Shape(format!("non-worker {worker} sent a partial")))?;
            let cols: Vec<usize> = bl.members(j).collect();
            let vals = decode_entries(sr, payload, cols.len())?;
            for (c, v) in cols.into_iter().zip(vals) {
                row[c] = sr.add(row[c], v);
            }
            Ok(())
        };
        for (src, payload) in &delivered2[r] {
            apply(src.index(), payload)?;
        }
        for (w, payload) in &local_partials[r] {
            apply(*w, payload)?;
        }
        c_rows.push(row);
    }
    Ok(c_rows)
}

/// The naive `O(n)`-round baseline: all-to-all broadcast of full rows, then
/// local multiplication.
pub fn mm_naive_broadcast<S: Semiring>(
    session: &mut Session,
    sr: &S,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<Vec<Vec<S::Elem>>, MatmulError> {
    let n = session.n();
    check_shapes(n, a_rows, b_rows)?;
    let payloads: Vec<BitString> = (0..n)
        .map(|v| {
            let mut bits = encode_entries(sr, a_rows[v].iter().copied());
            bits.extend_from(&encode_entries(sr, b_rows[v].iter().copied()));
            bits
        })
        .collect();
    let views = cc_routing::all_to_all_broadcast(session, payloads)?;

    // Every node now holds both matrices; compute its own row.
    let mut c_rows = Vec::with_capacity(n);
    for v in 0..n {
        let mut a = Vec::with_capacity(n);
        let mut b = Vec::with_capacity(n);
        for bits in &views[v] {
            let all = decode_entries(sr, bits, 2 * n)?;
            a.push(all[..n].to_vec());
            b.push(all[n..].to_vec());
        }
        let mut row = vec![sr.zero(); n];
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            let mut acc = sr.zero();
            for k in 0..n {
                acc = sr.add(acc, sr.mul(a[v][k], b[k][j]));
            }
            row[j] = acc;
        }
        c_rows.push(row);
    }
    Ok(c_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{mm_local, BoolSemiring, RingI64, TropicalSemiring, TROPICAL_INF};
    use cliquesim::Engine;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    /// `band`/`members`/`worker`/`triple` mutual consistency at one `n`:
    /// every vertex lies in exactly one band, `members` partitions `0..n`
    /// in order, `band` agrees with `members`, and `triple ∘ worker = id`
    /// on the worker cube (with `triple` rejecting everything past it).
    fn assert_blocking_consistent(n: usize) {
        let bl = Blocking::for_n(n);
        let t = bl.t;
        assert!(t >= 1, "n={n}");
        assert!(
            t * t * t <= n.max(1),
            "n={n}: worker cube exceeds node count"
        );
        assert!((t + 1).pow(3) > n, "n={n}: t is not maximal");
        assert_eq!(bl.band_size, n.div_ceil(t), "n={n}");

        // Bands partition 0..n in order, with no empty or clipped band.
        let mut covered = 0usize;
        for i in 0..t {
            let members = bl.members(i);
            assert_eq!(members.start, covered, "n={n} band {i} leaves a gap");
            assert!(!members.is_empty(), "n={n} band {i} is empty");
            for v in members.clone() {
                assert!(v < n, "n={n} band {i} member {v} out of range");
                assert_eq!(bl.band(v), i, "n={n} v={v}");
            }
            covered = members.end;
        }
        assert_eq!(covered, n, "n={n}: bands do not cover 0..n");

        // Worker indexing is a bijection between band triples and 0..t³.
        for i in 0..t {
            for j in 0..t {
                for k in 0..t {
                    let w = bl.worker(i, j, k);
                    assert!(w < n, "n={n} worker ({i},{j},{k}) = {w} is not a node");
                    assert_eq!(bl.triple(w), Some((i, j, k)), "n={n} w={w}");
                }
            }
        }
        for w in t * t * t..n {
            assert_eq!(bl.triple(w), None, "n={n} w={w} is not a worker");
        }
    }

    #[test]
    fn blocking_consistent_for_every_n_to_200() {
        // Exhaustive leg of the satellite acceptance: the proptest below
        // samples the same range, this pins every single n.
        for n in 1..=200 {
            assert_blocking_consistent(n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_blocking_consistent(n in 1usize..=200) {
            assert_blocking_consistent(n);
        }
    }

    #[test]
    fn blocking_covers_all_vertices() {
        for n in [1, 2, 7, 8, 9, 26, 27, 28, 63, 64, 100] {
            let bl = Blocking::for_n(n);
            assert!(bl.t * bl.t * bl.t <= n.max(1));
            let mut seen = vec![false; n];
            for i in 0..bl.t {
                for v in bl.members(i) {
                    assert_eq!(bl.band(v), i, "n={n} v={v}");
                    assert!(!seen[v]);
                    seen[v] = true;
                }
            }
            assert!(seen.into_iter().all(|s| s), "n={n}");
            for w in 0..bl.t.pow(3) {
                let (i, j, k) = bl.triple(w).unwrap();
                assert_eq!(bl.worker(i, j, k), w);
            }
            assert_eq!(bl.triple(bl.t.pow(3)), None);
        }
    }

    fn random_bool(n: usize, seed: u64) -> Matrix<bool> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        Matrix::from_fn(n, |_, _| rng.gen_bool(0.4))
    }

    #[test]
    fn three_d_bool_matches_local() {
        for n in [4, 8, 9, 16, 27] {
            let a = random_bool(n, 100 + n as u64);
            let b = random_bool(n, 200 + n as u64);
            let expect = mm_local(&BoolSemiring, &a, &b);
            let mut s = session(n);
            let got = mm_three_d(&mut s, &BoolSemiring, &a.to_rows(), &b.to_rows()).unwrap();
            assert_eq!(Matrix::from_rows(got), expect, "n={n}");
            assert!(s.stats().rounds > 0);
        }
    }

    #[test]
    fn three_d_tropical_matches_local() {
        let n = 16;
        let sr = TropicalSemiring::with_width(12);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let gen = |rng: &mut rand_chacha::ChaCha8Rng| {
            Matrix::from_fn(n, |_, _| {
                if rng.gen_bool(0.3) {
                    TROPICAL_INF
                } else {
                    rng.gen_range(0..500)
                }
            })
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let expect = mm_local(&sr, &a, &b);
        let mut s = session(n);
        let got = mm_three_d(&mut s, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), expect);
    }

    #[test]
    fn three_d_ring_matches_local() {
        let n = 8;
        let sr = RingI64::with_width(32);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let a = Matrix::from_fn(n, |_, _| rng.gen_range(-50..50));
        let b = Matrix::from_fn(n, |_, _| rng.gen_range(-50..50));
        let expect = mm_local(&sr, &a, &b);
        let mut s = session(n);
        let got = mm_three_d(&mut s, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), expect);
    }

    #[test]
    fn naive_matches_local() {
        let n = 10;
        let a = random_bool(n, 5);
        let b = random_bool(n, 6);
        let expect = mm_local(&BoolSemiring, &a, &b);
        let mut s = session(n);
        let got = mm_naive_broadcast(&mut s, &BoolSemiring, &a.to_rows(), &b.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), expect);
    }

    #[test]
    fn three_d_beats_naive_at_scale() {
        // The crossover for log n-width entries sits between n = 27 and
        // n = 64 (the 3D algorithm pays constant-factor framing overheads).
        let n = 64;
        let sr = TropicalSemiring::for_max_value(1000);
        let a = Matrix::filled(n, 3u64);
        let b = Matrix::filled(n, 4u64);
        let mut s1 = session(n);
        mm_three_d(&mut s1, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        let mut s2 = session(n);
        mm_naive_broadcast(&mut s2, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        assert!(
            s1.stats().rounds < s2.stats().rounds,
            "3D {} rounds vs naive {} rounds",
            s1.stats().rounds,
            s2.stats().rounds
        );
    }

    #[test]
    fn non_cube_sizes_are_handled() {
        // The blocking pads gracefully for every n, not just perfect cubes.
        for n in [2usize, 3, 5, 7, 11, 13, 20, 26, 28, 35] {
            let a = random_bool(n, 500 + n as u64);
            let b = random_bool(n, 600 + n as u64);
            let expect = mm_local(&BoolSemiring, &a, &b);
            let mut s = session(n);
            let got = mm_three_d(&mut s, &BoolSemiring, &a.to_rows(), &b.to_rows()).unwrap();
            assert_eq!(Matrix::from_rows(got), expect, "n={n}");
        }
    }

    #[test]
    fn identity_and_zero_matrices() {
        let n = 12;
        let sr = RingI64::with_width(16);
        let id = Matrix::from_fn(n, |i, j| i64::from(i == j));
        let zero = Matrix::filled(n, 0i64);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let a = Matrix::from_fn(n, |_, _| rng.gen_range(-20..20));
        let mut s = session(n);
        let got = mm_three_d(&mut s, &sr, &a.to_rows(), &id.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), a);
        let mut s = session(n);
        let got = mm_three_d(&mut s, &sr, &zero.to_rows(), &a.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), zero);
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut s = session(4);
        let bad = vec![vec![false; 3]; 4];
        let good = vec![vec![false; 4]; 4];
        assert!(matches!(
            mm_three_d(&mut s, &BoolSemiring, &bad, &good),
            Err(MatmulError::Shape(_))
        ));
    }
}
