//! Sparse matrix multiplication on the congested clique (Le Gall tier).
//!
//! Le Gall (arXiv:1608.02674) shows that multiplying matrices with `m`
//! nonzeros needs only `O((m/n)^{2/3}/n^{1/3} + 1)` rounds — far below the
//! dense-3D `O(n^{1/3})` when `m ≪ n²`. This module lands the practically
//! dominant part of that result for the workspace's semirings:
//!
//! 1. **Nonzero-count agreement via gossip**: every node broadcasts its
//!    per-band nonzero counts for its rows of `A` and `B` (one
//!    [`cc_routing::all_to_all_sized`] collective). After the gossip every
//!    payload size below is *global knowledge*, which is exactly the
//!    legitimacy requirement of the header-free sized routing tier.
//! 2. **Load-balanced redistribution of nonzero triples**: each row holder
//!    ships, per 3D block, only its nonzero `(column, value)` pairs —
//!    `⌈log₂ band⌉ + w` bits per triple instead of `band · w` bits per
//!    block row — over the balanced megastream
//!    ([`cc_routing::route_balanced_sized`]).
//! 3. **Band-local combine**: workers multiply their sparse blocks locally,
//!    combining all same-`(row, column)` contributions inside the block,
//!    then ship dense partial rows (their sizes are functions of `n` alone,
//!    so no second gossip is needed) to the row owners, which sum.
//!
//! Outputs are **bit-identical** to [`crate::mm_three_d`] and the serial
//! oracle: every workspace semiring has commutative, associative addition
//! with a true additive identity, so skipping zero terms and reordering
//! sums cannot change any output value.
//!
//! [`mm_sparse_overhead`] is the exact analytic ledger — the full
//! [`RunStats`] of a sparse run computed from the inputs without
//! simulating, asserted field-for-field the way `dolev_strong_overhead`
//! is. [`MmStrategy`] is the density-aware selector mirroring the
//! `DeliveryMode` precedent, with the crossover pinned at
//! `max(nnz A, nnz B) ≤ n·⌊√n⌋` (the `m ≤ n^{3/2}` regime of the paper).

use cliquesim::{BitString, NodeId, RunStats, Session};

use cc_routing::{
    all_to_all_sized, all_to_all_sized_cost, route_balanced_sized, route_balanced_sized_cost,
    DemandSizes,
};

use crate::distributed::{
    check_shapes, decode_entries, encode_entries, mm_naive_broadcast, mm_three_d, Blocking,
    MatmulError,
};
use crate::semiring::Semiring;

/// Which distributed multiplication path to run, mirroring the
/// `DeliveryMode::{Auto, Dense, Sparse}` precedent in `cliquesim`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MmStrategy {
    /// Decide by density: run the nonzero-count gossip (which the sparse
    /// path needs anyway), then pick [`MmStrategy::Sparse`] iff
    /// `max(nnz A, nnz B) ≤ n·⌊√n⌋`, else [`MmStrategy::Dense3D`].
    Auto,
    /// Always the dense 3D schedule ([`crate::mm_three_d`]).
    Dense3D,
    /// Always the sparse path ([`mm_sparse`]).
    Sparse,
    /// The folklore `O(n)`-round baseline ([`crate::mm_naive_broadcast`]).
    NaiveBroadcast,
}

impl MmStrategy {
    /// Short tag for repro labels (`mm[...]@sparse`).
    pub fn tag(&self) -> &'static str {
        match self {
            MmStrategy::Auto => "auto",
            MmStrategy::Dense3D => "dense3d",
            MmStrategy::Sparse => "sparse",
            MmStrategy::NaiveBroadcast => "naive",
        }
    }

    /// The Auto crossover: sparse wins while `nnz ≤ n·⌊√n⌋` (the paper's
    /// `m ≤ n^{3/2}` regime, integer-exact so tests can pin both sides).
    pub fn sparse_threshold(n: usize) -> usize {
        n * isqrt(n)
    }

    /// Resolve `Auto` against agreed nonzero totals; concrete strategies
    /// return themselves.
    pub fn resolve(self, n: usize, nnz_a: usize, nnz_b: usize) -> MmStrategy {
        match self {
            MmStrategy::Auto => {
                if nnz_a.max(nnz_b) <= Self::sparse_threshold(n) {
                    MmStrategy::Sparse
                } else {
                    MmStrategy::Dense3D
                }
            }
            other => other,
        }
    }
}

/// Integer square root: the largest `r` with `r·r ≤ n`.
fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut r = (n as f64).sqrt() as usize;
    while r * r > n {
        r -= 1;
    }
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    r
}

/// Outcome of a strategy-dispatched multiplication.
#[derive(Clone, Debug)]
pub struct MmRun<E> {
    /// Node `v`'s row of the product.
    pub rows: Vec<Vec<E>>,
    /// The concrete path that ran (never [`MmStrategy::Auto`]).
    pub resolved: MmStrategy,
}

/// Per-row, per-band nonzero counts of both inputs, as agreed by the
/// gossip round: `a[u][k]` counts nonzeros of `A[u, band k]`.
struct NnzCounts {
    a: Vec<Vec<usize>>,
    b: Vec<Vec<usize>>,
}

impl NnzCounts {
    fn total_a(&self) -> usize {
        self.a.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    fn total_b(&self) -> usize {
        self.b.iter().map(|r| r.iter().sum::<usize>()).sum()
    }
}

/// Count the nonzeros of `rows[u]` within each band.
fn band_counts<S: Semiring>(sr: &S, bl: &Blocking, rows: &[Vec<S::Elem>]) -> Vec<Vec<usize>> {
    let zero = sr.zero();
    rows.iter()
        .map(|row| {
            (0..bl.t)
                .map(|k| bl.members(k).filter(|&c| row[c] != zero).count())
                .collect()
        })
        .collect()
}

/// Width of one gossiped count: band occupancy is in `0..=band_size`.
fn count_width(bl: &Blocking) -> usize {
    BitString::width_for(bl.band_size + 1)
}

/// Phase 0: every node broadcasts its `2t` per-band counts; all nodes end
/// with the same global count table (the agreement that legitimises sized
/// routing for the input-dependent phases below).
fn gossip_counts<S: Semiring>(
    session: &mut Session,
    sr: &S,
    bl: &Blocking,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<NnzCounts, MatmulError> {
    let n = session.n();
    let t = bl.t;
    let cw = count_width(bl);
    let cnt_a = band_counts(sr, bl, a_rows);
    let cnt_b = band_counts(sr, bl, b_rows);
    let payloads: Vec<BitString> = (0..n)
        .map(|u| {
            let mut bits = BitString::with_capacity(2 * t * cw);
            for k in 0..t {
                bits.push_uint(cnt_a[u][k] as u64, cw);
            }
            for j in 0..t {
                bits.push_uint(cnt_b[u][j] as u64, cw);
            }
            bits
        })
        .collect();
    let views = all_to_all_sized(session, payloads)?;

    // Decode the agreed table from node 0's view (all views are equal:
    // delivery is reliable) and cross-check it against the local counts.
    let mut a = Vec::with_capacity(n);
    let mut b = Vec::with_capacity(n);
    for u in 0..n {
        let mut r = views[0][u].reader();
        let mut ra = Vec::with_capacity(t);
        let mut rb = Vec::with_capacity(t);
        for _ in 0..t {
            ra.push(r.read_uint(cw).map_err(MatmulError::Decode)? as usize);
        }
        for _ in 0..t {
            rb.push(r.read_uint(cw).map_err(MatmulError::Decode)? as usize);
        }
        r.expect_end().map_err(MatmulError::Decode)?;
        a.push(ra);
        b.push(rb);
    }
    debug_assert_eq!(a, cnt_a, "gossiped A counts diverge from local counts");
    debug_assert_eq!(b, cnt_b, "gossiped B counts diverge from local counts");
    Ok(NnzCounts { a, b })
}

/// Encode the nonzeros of `row` restricted to band `band` as
/// `(band-local column index, value)` pairs — the "nonzero triples" of the
/// redistribution (the row index is implicit in the sender).
fn encode_sparse_chunk<S: Semiring>(
    sr: &S,
    lw: usize,
    band: std::ops::Range<usize>,
    row: &[S::Elem],
) -> BitString {
    let zero = sr.zero();
    let start = band.start;
    let mut out = BitString::new();
    for c in band {
        if row[c] != zero {
            out.push_uint((c - start) as u64, lw);
            sr.encode(row[c], &mut out);
        }
    }
    out
}

/// Decode a sparse chunk of `count` `(local column, value)` pairs.
fn decode_sparse_chunk<S: Semiring>(
    sr: &S,
    lw: usize,
    count: usize,
    bits: &BitString,
) -> Result<Vec<(usize, S::Elem)>, MatmulError> {
    let mut r = bits.reader();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let c = r.read_uint(lw).map_err(MatmulError::Decode)? as usize;
        let v = sr.decode(&mut r)?;
        out.push((c, v));
    }
    r.expect_end().map_err(MatmulError::Decode)?;
    Ok(out)
}

/// Sparse semiring multiplication: gossip, sparse redistribution,
/// band-local combine. Same input/output convention as
/// [`crate::mm_three_d`]; outputs are bit-identical to it. Strictly
/// cheaper in rounds on sparse instances (`m ≲ n^{3/2}`); on dense inputs
/// the dense path wins — that trade is what [`MmStrategy::Auto`] arbitrates.
pub fn mm_sparse<S: Semiring>(
    session: &mut Session,
    sr: &S,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<Vec<Vec<S::Elem>>, MatmulError> {
    let n = session.n();
    check_shapes(n, a_rows, b_rows)?;
    let bl = Blocking::for_n(n);
    let counts = gossip_counts(session, sr, &bl, a_rows, b_rows)?;
    mm_sparse_with_counts(session, sr, &bl, &counts, a_rows, b_rows)
}

/// The sparse path after the gossip (shared by [`mm_sparse`] and the
/// `Auto` dispatcher, which has already paid for the count agreement).
fn mm_sparse_with_counts<S: Semiring>(
    session: &mut Session,
    sr: &S,
    bl: &Blocking,
    counts: &NnzCounts,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<Vec<Vec<S::Elem>>, MatmulError> {
    let n = session.n();
    let t = bl.t;
    let lw = BitString::width_for(bl.band_size);

    // ---- Phase 1: redistribute nonzero triples (sized balanced) ----------
    // Same worker schedule as the dense path, but payloads carry only
    // nonzero (local column, value) pairs; sizes are fixed by the gossiped
    // counts, so every node can split the header-free streams. Payload
    // order per (sender, worker) pair is A first, then B, as in the dense
    // path (the i == k case is the only one where both reach one worker).
    let mut demands: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    for u in 0..n {
        let bu = bl.band(u);
        for j in 0..t {
            for k in 0..t {
                let w = bl.worker(bu, j, k);
                if w == u {
                    continue; // local hand-off: worker reads its own rows
                }
                demands[u].push((
                    NodeId::from(w),
                    encode_sparse_chunk(sr, lw, bl.members(k), &a_rows[u]),
                ));
            }
        }
        for i in 0..t {
            for j in 0..t {
                let w = bl.worker(i, j, bu);
                if w == u {
                    continue;
                }
                demands[u].push((
                    NodeId::from(w),
                    encode_sparse_chunk(sr, lw, bl.members(j), &b_rows[u]),
                ));
            }
        }
    }
    let delivered = route_balanced_sized(session, demands)?;

    // ---- Local band-local combine ----------------------------------------
    // Worker (i, j, k) multiplies sparse A_ik against sparse B_kj into a
    // dense (band i × band j) block, combining every same-cell
    // contribution locally before anything is shipped.
    let mut products: Vec<Option<Vec<Vec<S::Elem>>>> = vec![None; n];
    for w in 0..n {
        let Some((i, j, k)) = bl.triple(w) else {
            continue;
        };
        let rows_i: Vec<usize> = bl.members(i).collect();
        let rows_k: Vec<usize> = bl.members(k).collect();
        let cols_j = bl.members(j).len();

        let mut from: Vec<Vec<&BitString>> = vec![Vec::new(); n];
        for (src, payload) in &delivered[w] {
            from[src.index()].push(payload);
        }

        // Sparse A rows, indexed by position within band i.
        let mut a_sparse: Vec<Vec<(usize, S::Elem)>> = Vec::with_capacity(rows_i.len());
        for &u in &rows_i {
            let entries = if u == w {
                let start = bl.members(k).start;
                let zero = sr.zero();
                bl.members(k)
                    .filter(|&c| a_rows[u][c] != zero)
                    .map(|c| (c - start, a_rows[u][c]))
                    .collect()
            } else {
                let payload = from[u]
                    .first()
                    .ok_or_else(|| MatmulError::Shape(format!("worker {w} missing A chunk {u}")))?;
                decode_sparse_chunk(sr, lw, counts.a[u][k], payload)?
            };
            a_sparse.push(entries);
        }
        // Sparse B rows, indexed by position within band k (the payload is
        // the last of the ≤ 2 this sender shipped here; A came first).
        let mut b_sparse: Vec<Vec<(usize, S::Elem)>> = Vec::with_capacity(rows_k.len());
        for &u in &rows_k {
            let entries = if u == w {
                let start = bl.members(j).start;
                let zero = sr.zero();
                bl.members(j)
                    .filter(|&c| b_rows[u][c] != zero)
                    .map(|c| (c - start, b_rows[u][c]))
                    .collect()
            } else {
                let payload = from[u]
                    .last()
                    .ok_or_else(|| MatmulError::Shape(format!("worker {w} missing B chunk {u}")))?;
                decode_sparse_chunk(sr, lw, counts.b[u][j], payload)?
            };
            b_sparse.push(entries);
        }

        let mut p: Vec<Vec<S::Elem>> = vec![vec![sr.zero(); cols_j]; rows_i.len()];
        for (ri, a_row) in a_sparse.iter().enumerate() {
            for &(l, va) in a_row {
                for &(c, vb) in &b_sparse[l] {
                    p[ri][c] = sr.add(p[ri][c], sr.mul(va, vb));
                }
            }
        }
        products[w] = Some(p);
    }

    // ---- Phase 2: ship dense partial rows to row owners (sized) ----------
    // Partial sizes are pure functions of n (cols_j · entry bits), so the
    // sized schedule stays legitimate without gossiping product structure.
    let mut demands2: Vec<Vec<(NodeId, BitString)>> = vec![Vec::new(); n];
    let mut local_partials: Vec<Vec<(usize, BitString)>> = vec![Vec::new(); n];
    for w in 0..n {
        let Some((i, j, _)) = bl.triple(w) else {
            continue;
        };
        let p = products[w].as_ref().expect("worker has product");
        let cols_j = bl.members(j).len();
        for (ri, r) in bl.members(i).enumerate() {
            let payload = encode_entries(sr, (0..cols_j).map(|c| p[ri][c]));
            if r == w {
                local_partials[r].push((w, payload));
            } else {
                demands2[w].push((NodeId::from(r), payload));
            }
        }
    }
    let delivered2 = route_balanced_sized(session, demands2)?;

    // Row owners sum partials (identical to the dense path).
    let mut c_rows: Vec<Vec<S::Elem>> = Vec::with_capacity(n);
    for r in 0..n {
        let mut row = vec![sr.zero(); n];
        let mut apply = |worker: usize, payload: &BitString| -> Result<(), MatmulError> {
            let (_, j, _) = bl
                .triple(worker)
                .ok_or_else(|| MatmulError::Shape(format!("non-worker {worker} sent a partial")))?;
            let cols: Vec<usize> = bl.members(j).collect();
            let vals = decode_entries(sr, payload, cols.len())?;
            for (c, v) in cols.into_iter().zip(vals) {
                row[c] = sr.add(row[c], v);
            }
            Ok(())
        };
        for (src, payload) in &delivered2[r] {
            apply(src.index(), payload)?;
        }
        for (w, payload) in &local_partials[r] {
            apply(*w, payload)?;
        }
        c_rows.push(row);
    }
    Ok(c_rows)
}

/// Strategy-dispatched multiplication: the single entry point consumers
/// (triangle detection, distance products) call.
///
/// `Auto` runs the count gossip first (in-model agreement on the nonzero
/// totals), then branches; its cost is the gossip plus the chosen path.
pub fn mm_with_strategy<S: Semiring>(
    session: &mut Session,
    sr: &S,
    strategy: MmStrategy,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> Result<MmRun<S::Elem>, MatmulError> {
    let n = session.n();
    match strategy {
        MmStrategy::Dense3D => Ok(MmRun {
            rows: mm_three_d(session, sr, a_rows, b_rows)?,
            resolved: MmStrategy::Dense3D,
        }),
        MmStrategy::NaiveBroadcast => Ok(MmRun {
            rows: mm_naive_broadcast(session, sr, a_rows, b_rows)?,
            resolved: MmStrategy::NaiveBroadcast,
        }),
        MmStrategy::Sparse => Ok(MmRun {
            rows: mm_sparse(session, sr, a_rows, b_rows)?,
            resolved: MmStrategy::Sparse,
        }),
        MmStrategy::Auto => {
            check_shapes(n, a_rows, b_rows)?;
            let bl = Blocking::for_n(n);
            let counts = gossip_counts(session, sr, &bl, a_rows, b_rows)?;
            let resolved = strategy.resolve(n, counts.total_a(), counts.total_b());
            let rows = match resolved {
                MmStrategy::Sparse => {
                    mm_sparse_with_counts(session, sr, &bl, &counts, a_rows, b_rows)?
                }
                _ => mm_three_d(session, sr, a_rows, b_rows)?,
            };
            Ok(MmRun { rows, resolved })
        }
    }
}

/// The exact analytic ledger of [`mm_sparse`]: the [`RunStats`] a session
/// accumulates running the sparse path on these inputs, computed without
/// simulating.
///
/// Recomputes every phase's demand-size shape independently (per-band
/// nonzero counting, the same worker schedule) and prices it with the
/// routing cost twins; the session combination (rounds add, max fields
/// max) matches `RunStats::absorb`. Asserted field-for-field against
/// simulation in the conformance suite, the way `dolev_strong_overhead`
/// is.
pub fn mm_sparse_overhead<S: Semiring>(
    n: usize,
    bandwidth: usize,
    sr: &S,
    a_rows: &[Vec<S::Elem>],
    b_rows: &[Vec<S::Elem>],
) -> RunStats {
    let bl = Blocking::for_n(n);
    let t = bl.t;
    let eb = sr.entry_bits();
    let cw = count_width(&bl);
    let lw = BitString::width_for(bl.band_size);
    let cnt_a = band_counts(sr, &bl, a_rows);
    let cnt_b = band_counts(sr, &bl, b_rows);

    // Phase 0: gossip of 2t counts per node.
    let gossip_lens = vec![2 * t * cw; n];
    let mut stats = all_to_all_sized_cost(n, bandwidth, &gossip_lens);

    // Phase 1: sparse triple redistribution, sizes from the count table.
    let mut sizes1: DemandSizes = vec![Vec::new(); n];
    for u in 0..n {
        let bu = bl.band(u);
        for j in 0..t {
            for k in 0..t {
                let w = bl.worker(bu, j, k);
                if w != u {
                    sizes1[u].push((w, cnt_a[u][k] * (lw + eb)));
                }
            }
        }
        for i in 0..t {
            for j in 0..t {
                let w = bl.worker(i, j, bu);
                if w != u {
                    sizes1[u].push((w, cnt_b[u][j] * (lw + eb)));
                }
            }
        }
    }
    stats.absorb(&route_balanced_sized_cost(n, bandwidth, &sizes1));

    // Phase 2: dense partial rows from every worker to its row owners.
    let mut sizes2: DemandSizes = vec![Vec::new(); n];
    for w in 0..n {
        let Some((i, j, _)) = bl.triple(w) else {
            continue;
        };
        let cols_j = bl.members(j).len();
        for r in bl.members(i) {
            if r != w {
                sizes2[w].push((r, cols_j * eb));
            }
        }
    }
    stats.absorb(&route_balanced_sized_cost(n, bandwidth, &sizes2));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{
        mm_local, BoolSemiring, Matrix, RingI64, TropicalSemiring, TROPICAL_INF,
    };
    use cliquesim::Engine;
    use rand::{Rng, SeedableRng};

    fn session(n: usize) -> Session {
        Session::new(Engine::new(n))
    }

    /// A random matrix with exactly `m` nonzeros (if `m ≤ n²`).
    fn sparse_ring(n: usize, m: usize, seed: u64) -> Matrix<i64> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut mat = Matrix::filled(n, 0i64);
        let mut placed = 0;
        while placed < m {
            let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if mat.get(i, j) == 0 {
                let mut v = rng.gen_range(-30i64..30);
                if v == 0 {
                    v = 7;
                }
                mat.set(i, j, v);
                placed += 1;
            }
        }
        mat
    }

    #[test]
    fn sparse_matches_local_and_dense_bitwise() {
        let sr = RingI64::with_width(16);
        for n in [4usize, 9, 16, 27] {
            let m = n * 2;
            let a = sparse_ring(n, m, 10 + n as u64);
            let b = sparse_ring(n, m, 20 + n as u64);
            let expect = mm_local(&sr, &a, &b);
            let mut s1 = session(n);
            let sparse = mm_sparse(&mut s1, &sr, &a.to_rows(), &b.to_rows()).unwrap();
            let mut s2 = session(n);
            let dense = mm_three_d(&mut s2, &sr, &a.to_rows(), &b.to_rows()).unwrap();
            assert_eq!(sparse, dense, "n={n}: sparse and dense outputs diverge");
            assert_eq!(Matrix::from_rows(sparse), expect, "n={n}");
        }
    }

    #[test]
    fn sparse_handles_tropical_and_bool() {
        let n = 16;
        let trop = TropicalSemiring::with_width(12);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let gen = |rng: &mut rand_chacha::ChaCha8Rng| {
            Matrix::from_fn(n, |_, _| {
                if rng.gen_bool(0.8) {
                    TROPICAL_INF
                } else {
                    rng.gen_range(0..400)
                }
            })
        };
        let a = gen(&mut rng);
        let b = gen(&mut rng);
        let mut s = session(n);
        let got = mm_sparse(&mut s, &trop, &a.to_rows(), &b.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), mm_local(&trop, &a, &b));

        let boolean = Matrix::from_fn(n, |i, j| (i * 5 + j) % 11 == 0);
        let mut s = session(n);
        let got = mm_sparse(
            &mut s,
            &BoolSemiring,
            &boolean.to_rows(),
            &boolean.to_rows(),
        )
        .unwrap();
        assert_eq!(
            Matrix::from_rows(got),
            mm_local(&BoolSemiring, &boolean, &boolean)
        );
    }

    #[test]
    fn sparse_beats_dense_rounds_on_sparse_instances() {
        // The tentpole acceptance at the small end (the full n ∈ {64, 125,
        // 216} sweep lives in tests/matmul_suite.rs).
        let sr = RingI64::with_width(16);
        let n = 27;
        let m = 27 * 5; // ≤ n^{3/2} = 140 is violated; use m = n·√n ≈ 140
        let m = m.min(MmStrategy::sparse_threshold(n));
        let a = sparse_ring(n, m, 1);
        let b = sparse_ring(n, m, 2);
        let mut s1 = session(n);
        mm_sparse(&mut s1, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        let mut s2 = session(n);
        mm_three_d(&mut s2, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        assert!(
            s1.stats().rounds < s2.stats().rounds,
            "sparse {} rounds vs dense {}",
            s1.stats().rounds,
            s2.stats().rounds
        );
    }

    #[test]
    fn overhead_matches_simulation_field_for_field() {
        let sr = RingI64::with_width(16);
        for n in [4usize, 9, 16, 27] {
            let a = sparse_ring(n, n * 2, 30 + n as u64);
            let b = sparse_ring(n, n, 40 + n as u64);
            let mut s = session(n);
            mm_sparse(&mut s, &sr, &a.to_rows(), &b.to_rows()).unwrap();
            let analytic = mm_sparse_overhead(n, s.bandwidth(), &sr, &a.to_rows(), &b.to_rows());
            assert_eq!(analytic, s.stats(), "n={n}");
        }
    }

    #[test]
    fn auto_resolves_on_the_pinned_threshold() {
        let n = 16;
        let thr = MmStrategy::sparse_threshold(n);
        assert_eq!(thr, 64);
        assert_eq!(MmStrategy::Auto.resolve(n, thr, thr), MmStrategy::Sparse);
        assert_eq!(MmStrategy::Auto.resolve(n, thr + 1, 0), MmStrategy::Dense3D);
        assert_eq!(MmStrategy::Auto.resolve(n, 0, thr + 1), MmStrategy::Dense3D);
        assert_eq!(
            MmStrategy::Sparse.resolve(n, usize::MAX, 0),
            MmStrategy::Sparse
        );
    }

    #[test]
    fn strategy_dispatch_is_output_identical() {
        let sr = RingI64::with_width(16);
        let n = 9;
        let a = sparse_ring(n, 12, 7);
        let b = sparse_ring(n, 12, 8);
        let expect = mm_local(&sr, &a, &b);
        for strategy in [
            MmStrategy::Auto,
            MmStrategy::Dense3D,
            MmStrategy::Sparse,
            MmStrategy::NaiveBroadcast,
        ] {
            let mut s = session(n);
            let run = mm_with_strategy(&mut s, &sr, strategy, &a.to_rows(), &b.to_rows()).unwrap();
            assert_eq!(Matrix::from_rows(run.rows), expect, "{strategy:?}");
            assert_ne!(run.resolved, MmStrategy::Auto, "{strategy:?} must resolve");
        }
    }

    #[test]
    fn degenerate_shapes() {
        let sr = RingI64::with_width(16);
        // n = 1: no links, zero rounds, correct product.
        let a = Matrix::filled(1, 3i64);
        let b = Matrix::filled(1, 5i64);
        let mut s = session(1);
        let got = mm_sparse(&mut s, &sr, &a.to_rows(), &b.to_rows()).unwrap();
        assert_eq!(got, vec![vec![15i64]]);
        assert_eq!(s.stats().rounds, 0);
        let analytic = mm_sparse_overhead(1, s.bandwidth(), &sr, &a.to_rows(), &b.to_rows());
        assert_eq!(analytic, s.stats());

        // All-zero inputs.
        let n = 8;
        let zero = Matrix::filled(n, 0i64);
        let mut s = session(n);
        let got = mm_sparse(&mut s, &sr, &zero.to_rows(), &zero.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), zero);

        // A single nonzero.
        let mut single = Matrix::filled(n, 0i64);
        single.set(3, 5, 9);
        let mut id = Matrix::filled(n, 0i64);
        for i in 0..n {
            id.set(i, i, 1);
        }
        let mut s = session(n);
        let got = mm_sparse(&mut s, &sr, &single.to_rows(), &id.to_rows()).unwrap();
        assert_eq!(Matrix::from_rows(got), single);
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..2000usize {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "n={n} r={r}");
        }
    }
}
