//! Semirings and dense matrices.
//!
//! Figure 1 of the paper distinguishes Boolean, ring, and `(min,+)`
//! ("tropical") matrix multiplication; all three share the same
//! communication structure and differ only in the carrier semiring and its
//! wire encoding. The paper assumes matrix entries "encodable in O(log n)
//! bits"; the encodings here make the entry width explicit so the engine
//! can enforce it.

use cliquesim::{BitReader, BitString, DecodeError};

/// A semiring with a fixed-width wire encoding for its elements.
pub trait Semiring: Clone + Send + Sync + 'static {
    /// Carrier type.
    type Elem: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static;

    /// Additive identity (also the "no contribution" value).
    fn zero(&self) -> Self::Elem;

    /// Semiring addition (`∨`, `min`, or `+`).
    fn add(&self, a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Semiring multiplication (`∧`, `+`, or `×`).
    fn mul(&self, a: Self::Elem, b: Self::Elem) -> Self::Elem;

    /// Exact number of bits one element occupies on the wire.
    fn entry_bits(&self) -> usize;

    /// Append one element to a bit string (exactly [`Self::entry_bits`] bits).
    fn encode(&self, e: Self::Elem, out: &mut BitString);

    /// Read one element back.
    fn decode(&self, r: &mut BitReader<'_>) -> Result<Self::Elem, DecodeError>;
}

/// The Boolean semiring `({0,1}, ∨, ∧)`: Boolean matrix multiplication,
/// adjacency-matrix powers, transitive closure.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoolSemiring;

impl Semiring for BoolSemiring {
    type Elem = bool;

    fn zero(&self) -> bool {
        false
    }

    fn add(&self, a: bool, b: bool) -> bool {
        a || b
    }

    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }

    fn entry_bits(&self) -> usize {
        1
    }

    fn encode(&self, e: bool, out: &mut BitString) {
        out.push(e);
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<bool, DecodeError> {
        r.read_bit()
    }
}

/// The tropical (min, +) semiring over `u64` with an explicit infinity,
/// used for distance-product / APSP computations.
///
/// Elements are encoded in `width` bits; the all-ones pattern is the
/// infinity sentinel, so finite values must be `< 2^width − 1`.
#[derive(Clone, Copy, Debug)]
pub struct TropicalSemiring {
    width: usize,
}

/// Infinity for [`TropicalSemiring`] values (matches `cc-graph`'s `INF`).
pub const TROPICAL_INF: u64 = u64::MAX / 4;

impl TropicalSemiring {
    /// A tropical semiring whose finite values fit in `width` bits
    /// (`2 ≤ width ≤ 62`).
    pub fn with_width(width: usize) -> Self {
        assert!((2..=62).contains(&width), "tropical width out of range");
        Self { width }
    }

    /// Width needed so that every value `≤ max_finite` (plus the sentinel)
    /// is encodable.
    pub fn for_max_value(max_finite: u64) -> Self {
        let width = (64 - (max_finite + 1).leading_zeros() as usize).clamp(2, 62);
        Self::with_width(width)
    }

    fn sentinel(&self) -> u64 {
        (1u64 << self.width) - 1
    }
}

impl Semiring for TropicalSemiring {
    type Elem = u64;

    fn zero(&self) -> u64 {
        TROPICAL_INF
    }

    fn add(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }

    fn mul(&self, a: u64, b: u64) -> u64 {
        if a >= TROPICAL_INF || b >= TROPICAL_INF {
            TROPICAL_INF
        } else {
            (a + b).min(TROPICAL_INF)
        }
    }

    fn entry_bits(&self) -> usize {
        self.width
    }

    fn encode(&self, e: u64, out: &mut BitString) {
        let v = if e >= TROPICAL_INF {
            self.sentinel()
        } else {
            assert!(
                e < self.sentinel(),
                "tropical value {e} too wide for {} bits",
                self.width
            );
            e
        };
        out.push_uint(v, self.width);
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<u64, DecodeError> {
        let v = r.read_uint(self.width)?;
        Ok(if v == self.sentinel() {
            TROPICAL_INF
        } else {
            v
        })
    }
}

/// The ring `(ℤ, +, ×)` over `i64` with wrapping arithmetic, encoded in
/// two's complement. Entries wrap mod `2^width`; choose the width so that
/// intermediate sums stay in range (e.g. counting walks in small graphs).
#[derive(Clone, Copy, Debug)]
pub struct RingI64 {
    width: usize,
}

impl RingI64 {
    /// A ring whose elements are encoded in `width` bits (`2..=64`).
    pub fn with_width(width: usize) -> Self {
        assert!((2..=64).contains(&width));
        Self { width }
    }

    fn wrap(&self, v: i64) -> i64 {
        if self.width == 64 {
            return v;
        }
        // Reduce into [-2^(w-1), 2^(w-1)).
        let m = 1i128 << self.width;
        let mut r = (v as i128).rem_euclid(m);
        if r >= m / 2 {
            r -= m;
        }
        r as i64
    }
}

impl Semiring for RingI64 {
    type Elem = i64;

    fn zero(&self) -> i64 {
        0
    }

    fn add(&self, a: i64, b: i64) -> i64 {
        self.wrap(a.wrapping_add(b))
    }

    fn mul(&self, a: i64, b: i64) -> i64 {
        self.wrap(a.wrapping_mul(b))
    }

    fn entry_bits(&self) -> usize {
        self.width
    }

    fn encode(&self, e: i64, out: &mut BitString) {
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        out.push_uint((e as u64) & mask, self.width);
    }

    fn decode(&self, r: &mut BitReader<'_>) -> Result<i64, DecodeError> {
        let raw = r.read_uint(self.width)?;
        // Sign-extend.
        if self.width < 64 && raw & (1u64 << (self.width - 1)) != 0 {
            Ok((raw | !((1u64 << self.width) - 1)) as i64)
        } else {
            Ok(raw as i64)
        }
    }
}

/// A dense row-major `n × n` matrix over a semiring carrier.
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    /// Constant matrix.
    pub fn filled(n: usize, v: T) -> Self {
        Self {
            n,
            data: vec![v; n * n],
        }
    }

    /// Build entry-wise.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Self { n, data }
    }

    /// Assemble from per-node rows (the distributed output format).
    pub fn from_rows(rows: Vec<Vec<T>>) -> Self {
        let n = rows.len();
        let mut data = Vec::with_capacity(n * n);
        for r in rows {
            assert_eq!(r.len(), n, "rows must be square");
            data.extend_from_slice(&r);
        }
        Self { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[i * self.n + j]
    }

    /// Set entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[i * self.n + j] = v;
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Rows as owned vectors (the distributed input format).
    pub fn to_rows(&self) -> Vec<Vec<T>> {
        (0..self.n).map(|i| self.row(i).to_vec()).collect()
    }
}

/// Reference (local) semiring product, the ground truth for the distributed
/// algorithms.
pub fn mm_local<S: Semiring>(sr: &S, a: &Matrix<S::Elem>, b: &Matrix<S::Elem>) -> Matrix<S::Elem> {
    let n = a.n();
    assert_eq!(n, b.n());
    Matrix::from_fn(n, |i, j| {
        let mut acc = sr.zero();
        for k in 0..n {
            acc = sr.add(acc, sr.mul(a.get(i, k), b.get(k, j)));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bool_semiring_is_or_and() {
        let s = BoolSemiring;
        assert!(!s.zero());
        assert!(s.add(true, false));
        assert!(!s.mul(true, false));
        let mut bits = BitString::new();
        s.encode(true, &mut bits);
        s.encode(false, &mut bits);
        let mut r = bits.reader();
        assert!(s.decode(&mut r).unwrap());
        assert!(!s.decode(&mut r).unwrap());
    }

    #[test]
    fn tropical_roundtrip_and_inf() {
        let s = TropicalSemiring::with_width(8);
        let mut bits = BitString::new();
        s.encode(5, &mut bits);
        s.encode(TROPICAL_INF, &mut bits);
        s.encode(254, &mut bits);
        let mut r = bits.reader();
        assert_eq!(s.decode(&mut r).unwrap(), 5);
        assert_eq!(s.decode(&mut r).unwrap(), TROPICAL_INF);
        assert_eq!(s.decode(&mut r).unwrap(), 254);
        assert_eq!(s.add(3, TROPICAL_INF), 3);
        assert_eq!(s.mul(3, TROPICAL_INF), TROPICAL_INF);
        assert_eq!(s.mul(3, 4), 7);
        assert_eq!(s.zero(), TROPICAL_INF);
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn tropical_rejects_overflow_values() {
        let s = TropicalSemiring::with_width(4);
        let mut bits = BitString::new();
        s.encode(15, &mut bits); // 15 == sentinel for width 4
    }

    #[test]
    fn tropical_width_selection() {
        assert_eq!(TropicalSemiring::for_max_value(0).entry_bits(), 2);
        assert_eq!(TropicalSemiring::for_max_value(2).entry_bits(), 2);
        assert_eq!(TropicalSemiring::for_max_value(3).entry_bits(), 3);
        assert_eq!(TropicalSemiring::for_max_value(1000).entry_bits(), 10);
    }

    #[test]
    fn ring_wraps_and_sign_extends() {
        let s = RingI64::with_width(8);
        assert_eq!(s.add(120, 10), -126); // wraps mod 256 into [-128, 128)
        assert_eq!(s.mul(16, 16), 0);
        let mut bits = BitString::new();
        s.encode(-3, &mut bits);
        s.encode(100, &mut bits);
        let mut r = bits.reader();
        assert_eq!(s.decode(&mut r).unwrap(), -3);
        assert_eq!(s.decode(&mut r).unwrap(), 100);
    }

    #[test]
    fn matrix_basics() {
        let m = Matrix::from_fn(3, |i, j| (i * 3 + j) as i64);
        assert_eq!(m.get(1, 2), 5);
        assert_eq!(m.row(2), &[6, 7, 8]);
        let rows = m.to_rows();
        assert_eq!(Matrix::from_rows(rows), m);
    }

    #[test]
    fn local_mm_identity() {
        let s = RingI64::with_width(32);
        let id = Matrix::from_fn(4, |i, j| i64::from(i == j));
        let a = Matrix::from_fn(4, |i, j| (i + 2 * j) as i64);
        assert_eq!(mm_local(&s, &a, &id), a);
        assert_eq!(mm_local(&s, &id, &a), a);
    }

    proptest! {
        #[test]
        fn prop_bool_mm_matches_reachability(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let n = 6;
            let a = Matrix::from_fn(n, |_, _| rng.gen_bool(0.4));
            let b = Matrix::from_fn(n, |_, _| rng.gen_bool(0.4));
            let c = mm_local(&BoolSemiring, &a, &b);
            for i in 0..n {
                for j in 0..n {
                    let expect = (0..n).any(|k| a.get(i, k) && b.get(k, j));
                    prop_assert_eq!(c.get(i, j), expect);
                }
            }
        }

        #[test]
        fn prop_ring_encode_roundtrip(v in any::<i64>(), width in 2usize..=64) {
            let s = RingI64::with_width(width);
            let w = s.wrap(v);
            let mut bits = BitString::new();
            s.encode(w, &mut bits);
            let mut r = bits.reader();
            prop_assert_eq!(s.decode(&mut r).unwrap(), w);
        }

        #[test]
        fn prop_tropical_mm_is_min_plus(seed in any::<u64>()) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let s = TropicalSemiring::with_width(16);
            let n = 5;
            let gen = |rng: &mut rand_chacha::ChaCha8Rng| {
                Matrix::from_fn(n, |_, _| if rng.gen_bool(0.3) { TROPICAL_INF } else { rng.gen_range(0..100) })
            };
            let a = gen(&mut rng);
            let b = gen(&mut rng);
            let c = mm_local(&s, &a, &b);
            for i in 0..n {
                for j in 0..n {
                    let expect = (0..n)
                        .map(|k| s.mul(a.get(i, k), b.get(k, j)))
                        .min()
                        .unwrap();
                    prop_assert_eq!(c.get(i, j), expect);
                }
            }
        }
    }
}
